open Vod_util
module F = Flow_network

(* Observability hooks (registered once; O(1) per event recorded). *)
let obs_phases = Vod_obs.Registry.counter Vod_obs.Registry.default "dinic.bfs_phases"
let obs_paths = Vod_obs.Registry.counter Vod_obs.Registry.default "dinic.augmenting_paths"
let obs_path_len = Vod_obs.Registry.histogram Vod_obs.Registry.default "dinic.path_length"

(* Assigns BFS levels over the residual graph; returns true when the sink
   is reachable. *)
let bfs_net net ~src ~sink level =
  Array.fill level 0 (Array.length level) (-1);
  level.(src) <- 0;
  let queue = Queue.create () in
  Queue.add src queue;
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    F.iter_arcs_from net v (fun a ->
        let w = F.arc_dst net a in
        if F.residual net a > 0 && level.(w) < 0 then begin
          level.(w) <- level.(v) + 1;
          Queue.add w queue
        end)
  done;
  level.(sink) >= 0

let max_flow ?(limit = max_int) net ~src ~sink =
  let n = F.node_count net in
  if src < 0 || src >= n || sink < 0 || sink >= n then
    invalid_arg "Dinic.max_flow: endpoint out of range";
  if src = sink then invalid_arg "Dinic.max_flow: src = sink";
  let level = Array.make n (-1) in
  (* Current-arc pointers: the next adjacency index to try per node.  We
     materialise each node's arc list once for O(1) advancing. *)
  let adjacency = Array.make n [||] in
  for v = 0 to n - 1 do
    let arcs = ref [] in
    F.iter_arcs_from net v (fun a -> arcs := a :: !arcs);
    adjacency.(v) <- Array.of_list !arcs
  done;
  let it = Array.make n 0 in
  let total = ref 0 in
  (* Depth-first blocking-flow augmentation in the level graph. *)
  let rec dfs v pushed =
    if v = sink then pushed
    else begin
      let result = ref 0 in
      let arcs = adjacency.(v) in
      while !result = 0 && it.(v) < Array.length arcs do
        let a = arcs.(it.(v)) in
        let w = F.arc_dst net a in
        let r = F.residual net a in
        if r > 0 && level.(w) = level.(v) + 1 then begin
          let got = dfs w (min pushed r) in
          if got > 0 then begin
            F.push net a got;
            result := got
          end
          else it.(v) <- it.(v) + 1
        end
        else it.(v) <- it.(v) + 1
      done;
      !result
    end
  in
  (try
     while !total < limit && bfs_net net ~src ~sink level do
       Vod_obs.Registry.incr obs_phases;
       Vod_obs.Registry.observe obs_path_len level.(sink);
       Array.fill it 0 n 0;
       let continue = ref true in
       while !continue do
         let pushed = dfs src (limit - !total) in
         if pushed = 0 then continue := false
         else begin
           Vod_obs.Registry.incr obs_paths;
           total := !total + pushed;
           if !total >= limit then raise Exit
         end
       done
     done
   with Exit -> ());
  !total

(* CSR bipartite specialisation.  The four-layer network
   (src -> lefts cap 1 -> rights via the CSR edges cap 1 -> sink with
   cap right_cap) is kept implicit: a left's unit is represented by the
   CSR edge id carrying it ([matched_edge], -1 when free at the source)
   and the sink arcs by per-right load counters.  Reverse-residual
   traversal (right -> matched occupant) runs over a CSR transpose built
   in the arena by counting sort; each transpose entry packs
   [(left lsl 31) lor edge_id] into one word, so the occupant sweep
   loads one cell where it used to load two.

   The BFS mirrors the Hopcroft-Karp kernel: a greedy first-fit pass
   seeds the matching, then layered word-parallel phases build the
   right-side frontier as a bitset, probe it against the free-seat set
   and stop at the first layer that can reach the sink.  [level] is
   versioned by a per-phase [base] offset (entries below [base] are
   unvisited), and the current-arc pointers are re-armed at visit time,
   so per-phase costs track the visited region instead of O(n).  All
   scratch lives in the arena: steady-state calls allocate nothing. *)
let solve_csr ?warm_start ~arena csr =
  let nl = Csr.n_left csr and nr = Csr.n_right csr in
  let row_start = Csr.row_start csr and col = Csr.col csr in
  let cap = Csr.right_cap_array csr in
  let m = Csr.n_edges csr in
  if nl lor m >= 1 lsl 31 then invalid_arg "Dinic.solve_csr: instance too large to pack";
  let matched_edge = Arena.ints arena.Arena.matched_edge (max nl 1) in
  let load = Arena.ints arena.Arena.right_load (max nr 1) in
  let level = Arena.ints arena.Arena.level (max (nl + nr) 1) in
  let queue = Arena.ints arena.Arena.queue (max (nl + nr) 1) in
  let it_left = Arena.ints arena.Arena.it_left (max nl 1) in
  let it_right = Arena.ints arena.Arena.it_right (max nr 1) in
  let t_row_start = Arena.ints arena.Arena.t_row_start (nr + 1) in
  let t_packed = Arena.ints arena.Arena.t_packed (max m 1) in
  let free_left = Arena.bits arena.Arena.free_left nl in
  let free_right = Arena.bits arena.Arena.free_right nr in
  let frontier = Arena.bits arena.Arena.frontier nr in
  let visited = Arena.bits arena.Arena.visited_right nr in
  let packed_mask = (1 lsl 31) - 1 in
  (* transpose: packed (left, edge id) per right, via counting sort *)
  Array.fill t_row_start 0 (nr + 1) 0;
  for e = 0 to m - 1 do
    let r = col.(e) in
    t_row_start.(r + 1) <- t_row_start.(r + 1) + 1
  done;
  for r = 0 to nr - 1 do
    t_row_start.(r + 1) <- t_row_start.(r + 1) + t_row_start.(r);
    it_right.(r) <- t_row_start.(r)
  done;
  for l = 0 to nl - 1 do
    for e = row_start.(l) to row_start.(l + 1) - 1 do
      let r = col.(e) in
      t_packed.(it_right.(r)) <- (l lsl 31) lor e;
      it_right.(r) <- it_right.(r) + 1
    done
  done;
  Array.fill matched_edge 0 nl (-1);
  Array.fill load 0 nr 0;
  (* versioned level: 0 everywhere is "never visited" for every phase *)
  Array.fill level 0 (nl + nr) 0;
  Bitset.set_prefix free_left nl;
  Bitset.clear free_right;
  for r = 0 to nr - 1 do
    if cap.(r) > 0 then Bitset.unsafe_add free_right r
  done;
  let size = ref 0 in
  (* seat one unit on [r]; caller guarantees a free seat *)
  let take_seat r =
    let f = load.(r) + 1 in
    load.(r) <- f;
    if f = cap.(r) then Bitset.unsafe_remove free_right r
  in
  (match warm_start with
  | None -> ()
  | Some ws ->
      (* at least [nl]: arena slabs are capacity-sized, extra cells ignored *)
      if Array.length ws < nl then invalid_arg "Dinic.solve_csr: warm_start length";
      for l = 0 to nl - 1 do
        let r = ws.(l) in
        if r >= 0 && r < nr && load.(r) < cap.(r) then begin
          let e = ref (-1) in
          let i = ref row_start.(l) in
          let stop = row_start.(l + 1) in
          while !e < 0 && !i < stop do
            if col.(!i) = r then e := !i;
            incr i
          done;
          if !e >= 0 then begin
            matched_edge.(l) <- !e;
            take_seat r;
            Bitset.unsafe_remove free_left l;
            incr size
          end
        end
      done);
  (* Greedy first-fit: identical to what the first phase would do (every
     free left takes its first edge to a right with a free seat, and no
     occupant can be displaced yet), at early-row-break cost. *)
  let l = ref (Bitset.next_set_bit free_left 0) in
  while !l >= 0 do
    let li = !l in
    let i = ref row_start.(li) in
    let stop = row_start.(li + 1) in
    while matched_edge.(li) = -1 && !i < stop do
      let r = col.(!i) in
      if Bitset.unsafe_mem free_right r then begin
        matched_edge.(li) <- !i;
        take_seat r;
        Bitset.unsafe_remove free_left li;
        incr size
      end;
      incr i
    done;
    l := Bitset.next_set_bit free_left (li + 1)
  done;
  let fw = Bitset.words frontier in
  let wsh = Bitset.word_shift and bmask = Bitset.bit_mask in
  let base = ref 1 in
  (* sink distance of the phase's level graph, for the path-length
     histogram: implicit levels start at the free lefts, so the full
     network's src->..->sink hop count is the right's level + 2 *)
  let sink_level = ref 0 in
  let bfs () =
    Bitset.clear visited;
    let tail = ref 0 in
    Bitset.iter
      (fun l ->
        level.(l) <- !base;
        it_left.(l) <- row_start.(l);
        queue.(!tail) <- l;
        incr tail)
      free_left;
    let found = ref false in
    let exhausted = ref false in
    let layer_start = ref 0 in
    let d = ref 0 in
    while (not !found) && not !exhausted do
      let layer_end = !tail in
      if !layer_start >= layer_end then exhausted := true
      else begin
        Bitset.clear frontier;
        for qi = !layer_start to layer_end - 1 do
          let lq = Array.unsafe_get queue qi in
          let me = matched_edge.(lq) in
          for i = row_start.(lq) to row_start.(lq + 1) - 1 do
            if i <> me then begin
              let r = Array.unsafe_get col i in
              let w = r lsr wsh in
              Array.unsafe_set fw w (Array.unsafe_get fw w lor (1 lsl (r land bmask)))
            end
          done
        done;
        Bitset.andnot_into ~dst:frontier visited;
        found := Bitset.intersects frontier free_right;
        (* rights of this layer sit at node distance 2d+1 from the free
           lefts; arm their level and current-arc pointer at visit time *)
        let rlevel = !base + (2 * !d) + 1 in
        if !found then begin
          sink_level := (2 * !d) + 1;
          Bitset.iter
            (fun r ->
              level.(nl + r) <- rlevel;
              it_right.(r) <- t_row_start.(r))
            frontier
        end
        else begin
          Bitset.union_into ~dst:visited frontier;
          Bitset.iter
            (fun r ->
              level.(nl + r) <- rlevel;
              it_right.(r) <- t_row_start.(r);
              (* reverse residual arcs point to the current occupants *)
              for j = t_row_start.(r) to t_row_start.(r + 1) - 1 do
                let p = Array.unsafe_get t_packed j in
                let l' = p lsr 31 in
                if matched_edge.(l') = p land packed_mask && level.(l') < !base then begin
                  level.(l') <- rlevel + 1;
                  it_left.(l') <- row_start.(l');
                  queue.(!tail) <- l';
                  incr tail
                end
              done)
            frontier;
          layer_start := layer_end;
          incr d
        end
      end
    done;
    !found
  in
  let rec dfs_left l =
    let res = ref false in
    while (not !res) && it_left.(l) < row_start.(l + 1) do
      let e = it_left.(l) in
      let r = col.(e) in
      if e <> matched_edge.(l) && level.(nl + r) = level.(l) + 1 && dfs_right r then begin
        matched_edge.(l) <- e;
        res := true
      end
      else it_left.(l) <- it_left.(l) + 1
    done;
    !res
  and dfs_right r =
    if load.(r) < cap.(r) then begin
      take_seat r;
      true
    end
    else begin
      let res = ref false in
      while (not !res) && it_right.(r) < t_row_start.(r + 1) do
        let p = t_packed.(it_right.(r)) in
        let l' = p lsr 31 in
        if
          matched_edge.(l') = p land packed_mask
          && level.(l') = level.(nl + r) + 1
          && dfs_left l'
        then
          (* l' rerouted its unit ([matched_edge.(l')] changed inside
             [dfs_left]); the seat it held on [r] transfers to the
             caller's unit, so [load.(r)] is unchanged *)
          res := true
        else it_right.(r) <- it_right.(r) + 1
      done;
      !res
    end
  in
  while bfs () do
    Vod_obs.Registry.incr obs_phases;
    Vod_obs.Registry.observe obs_path_len (!sink_level + 2);
    let l = ref (Bitset.next_set_bit free_left 0) in
    while !l >= 0 do
      let li = !l in
      if dfs_left li then begin
        Bitset.unsafe_remove free_left li;
        incr size;
        Vod_obs.Registry.incr obs_paths
      end;
      l := Bitset.next_set_bit free_left (li + 1)
    done;
    (* phase values reach [base + 2d + 2 <= base + nl + nr + 2] *)
    base := !base + nl + nr + 3
  done;
  let assignment = Arena.ints arena.Arena.assignment (max nl 1) in
  for l = 0 to nl - 1 do
    assignment.(l) <- (if matched_edge.(l) = -1 then -1 else col.(matched_edge.(l)))
  done;
  !size
