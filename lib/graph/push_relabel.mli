(** FIFO push–relabel maximum flow with the gap heuristic.  Implemented
    independently of {!Dinic} so the two can cross-validate each other on
    every connection-matching instance (experiment E9). *)

val max_flow : Flow_network.t -> src:int -> sink:int -> int
(** Computes a maximum flow destructively and returns its value.
    @raise Invalid_argument if [src = sink] or either is out of range. *)

val solve_csr : arena:Arena.t -> Csr.t -> int
(** Push-relabel specialised to the implicit bipartite matching network
    (src -> lefts cap 1 -> rights via the CSR edges cap 1 -> sink with
    cap [right_cap]); no [Flow_network] is materialised.  Returns the
    flow value (= matching size); the assignment and per-right loads are
    left in [Arena.assignment] / [Arena.right_load] (borrowed, valid
    until the arena's next solve).  All scratch lives in the arena, so
    steady-state calls allocate nothing. *)
