(** Cache-aware component-clustered vertex renumbering.

    Multi-component instances built by appending arrivals interleave
    the components' vertices across the id space, so a BFS that stays
    inside one component strides over the whole [dist] / adjacency
    range.  [prepare] renumbers vertices so each connected component
    occupies a contiguous id block (components ordered by first left
    appearance, ascending original order within a component, degree-0
    vertices at the tail) and returns a permuted instance for the
    solver; [commit] maps the arena's [assignment] / [right_load] back
    to original ids in place.

    Because the permutation is order-preserving within every component,
    the Hopcroft-Karp and Dinic kernels — whose tie-breaking restricted
    to a component depends only on the relative order of that
    component's vertices (DESIGN.md section 12) — return the
    bit-identical matching after [commit].  Push-relabel's global gap
    heuristic is not component-local, so only matching size is
    preserved there.

    Already-clustered instances (including the common one-component
    case) take an identity fast path: [prepare] returns its argument
    unchanged and [commit] is a no-op.  All tables and the permuted
    instance are reused across calls; steady state allocates nothing. *)

type t

val create : unit -> t

val prepare : t -> Csr.t -> Csr.t
(** Analyse [csr] and return the instance the solver should run on:
    [csr] itself when the layout is already clustered, otherwise a
    borrowed permuted copy owned by [t] (invalidated by the next
    [prepare]). *)

val is_identity : t -> bool
(** Whether the last [prepare] took the identity fast path. *)

val left_old : t -> int array
(** Borrowed [new -> old] left table from the last [prepare]; only
    meaningful when [is_identity t = false]. *)

val right_old : t -> int array
(** Borrowed [new -> old] right table, as [left_old]. *)

val project_warm : t -> int array -> int array
(** Map warm-start hints (old left id -> old right id or [-1]) into the
    permuted id space of the last [prepare].  Returns the argument
    itself on the identity path, otherwise a borrowed buffer. *)

val commit : t -> Arena.t -> unit
(** Unpermute [Arena.assignment] and [Arena.right_load] in place so the
    caller observes original ids.  No-op on the identity path.  Call
    exactly once per solve. *)
