(** Reusable solver arena: every scratch buffer the matching / max-flow
    cores need, grown with amortised doubling and never shrunk.

    An arena is allocated once (per engine, per bench harness, per sweep
    task — arenas are NOT domain-safe, each parallel task owns its own)
    and passed to [Hopcroft_karp.solve_csr], [Dinic.solve_csr],
    [Push_relabel.solve_csr] or [Bipartite.solve ~arena].  Once every
    slab has reached the high-water mark of the instances being solved,
    repeat solves allocate nothing.

    Slabs are deliberately exposed: the solvers live in this library and
    index the raw arrays on their hot paths.  Outside code should treat
    everything except [assignment] / [right_load] / [words] as private.

    Slab discipline: [ints slab n] returns the backing array grown to at
    least [n] cells.  Newly grown cells are zero but surviving cells
    keep whatever the previous solve left behind — a "dirty" arena —
    so every solver initialises the prefix it reads.  This is what makes
    solving the same instance twice through a dirty arena deterministic
    (property-tested in [test_graph]). *)

type slab = { mutable buf : int array }
type bitslab = { mutable bits : Vod_util.Bitset.t }

type t = {
  (* results of the last solve *)
  assignment : slab;  (** per left: matched right or -1 *)
  right_load : slab;  (** per right: seats taken *)
  (* shared scratch *)
  queue : slab;  (** BFS / FIFO worklist *)
  warm : slab;  (** validated warm-start seats (Bipartite.Incremental) *)
  (* Hopcroft-Karp (seat-counter capacitated variant) *)
  hk_dist : slab;
  seat_start : slab;  (** per right: first seat index (prefix sums) *)
  seats : slab;  (** occupied-seat registry: owning left per seat *)
  (* Dinic (implicit bipartite network) *)
  level : slab;
  it_left : slab;
  it_right : slab;
  matched_edge : slab;  (** per left: CSR edge id carrying its unit, or -1 *)
  t_row_start : slab;  (** CSR transpose: per right, first incoming edge *)
  t_eid : slab;  (** transpose payload: original CSR edge ids *)
  t_packed : slab;  (** transpose payload, packed [(left lsl 31) lor edge_id] *)
  edge_left : slab;  (** per CSR edge id: its left endpoint *)
  (* push-relabel (FIFO + gap heuristic) *)
  excess : slab;
  height : slab;
  height_count : slab;
  edge_flow : slab;  (** per CSR edge id: 0/1 *)
  src_flow : slab;  (** per left: 0/1 on the implicit source arc *)
  pr_it : slab;  (** current-arc pointers *)
  in_queue : slab;  (** 0/1 FIFO membership *)
  (* word-parallel BFS scratch (Hopcroft-Karp and Dinic) *)
  free_left : bitslab;  (** lefts still unmatched *)
  free_right : bitslab;  (** rights with a free seat *)
  frontier : bitslab;  (** rights reached by the layer being expanded *)
  visited_right : bitslab;  (** rights absorbed by earlier layers *)
}

val create : unit -> t
(** A fresh arena with every slab empty. *)

val ints : slab -> int -> int array
(** [ints slab n] grows [slab] to at least [n] cells (power-of-two
    doubling; newly grown cells are 0, surviving cells are dirty) and
    returns the backing array.  Borrowed: valid until the next growth. *)

val bits : bitslab -> int -> Vod_util.Bitset.t
(** [bits bitslab n] grows [bitslab] to capacity at least [n] (same
    power-of-two schedule as [ints], so bitslabs requested with equal
    [n] share a capacity and the word-sweep operations accept them
    together) and returns the bitset.  Dirty like [ints]: the solver
    must [clear] or [set_prefix] before reading.  Borrowed: valid until
    the next growth. *)

val assignment : t -> int array
(** Backing array of the last solve's assignment (borrowed; entries
    [0 .. n_left - 1] are meaningful). *)

val right_load : t -> int array
(** Backing array of the last solve's right loads (borrowed; entries
    [0 .. n_right - 1] are meaningful). *)

val words : t -> int
(** Total cells currently allocated across all slabs — a stabilising
    [words] across rounds is the zero-allocation steady state. *)
