(* Component-sharded parallel matching: union-find component labelling
   over the finalized edge set, balanced packing of components into
   shards, per-shard CSR instances solved over Par.map, deterministic
   fixed-order merge.  See shard.mli for the determinism contract. *)

module Registry = Vod_obs.Registry

type shard = {
  csr : Csr.t;
  arena : Arena.t;
  reg : Registry.t;
  layout : Layout.t; (* per-shard renumbering pass (opt-in at solve) *)
  mutable lefts : int array; (* local left -> global left *)
  mutable rights : int array; (* local right -> global right *)
  mutable n_left : int;
  mutable n_right : int;
  mutable warm : int array; (* projected local warm-start hints *)
  mutable matched : int;
}

type t = {
  max_shards : int;
  (* union-find scratch over n_left + n_right vertices; right vertex
     [r] is node [n_left + r] *)
  mutable parent : int array;
  mutable usize : int array;
  mutable comp_of_root : int array;
  mutable comp_of_left : int array;
  mutable comp_of_right : int array;
  mutable comp_edges : int array;
  mutable shard_of_comp : int array;
  (* global -> shard-local vertex ids; valid because a vertex belongs
     to at most one component, hence at most one shard *)
  mutable left_local : int array;
  mutable right_local : int array;
  mutable pool : shard array;
  mutable n_components : int;
  mutable n_shards : int;
  mutable nl : int;
  mutable nr : int;
  (* merged results *)
  mutable assignment : int array;
  mutable right_load : int array;
}

let next_cap n =
  let c = ref 8 in
  while !c < n do
    c := 2 * !c
  done;
  !c

let ensure a n = if Array.length a >= n then a else Array.make (next_cap n) 0

let ensure_keep a n used =
  if Array.length a >= n then a
  else begin
    let a' = Array.make (next_cap n) 0 in
    Array.blit a 0 a' 0 used;
    a'
  end

let fresh_shard () =
  {
    csr = Csr.create ();
    arena = Arena.create ();
    reg = Registry.create ();
    layout = Layout.create ();
    lefts = [||];
    rights = [||];
    n_left = 0;
    n_right = 0;
    warm = [||];
    matched = 0;
  }

let create ?(max_shards = 64) () =
  if max_shards < 1 then invalid_arg "Shard.create: max_shards < 1";
  {
    max_shards;
    parent = [||];
    usize = [||];
    comp_of_root = [||];
    comp_of_left = [||];
    comp_of_right = [||];
    comp_edges = [||];
    shard_of_comp = [||];
    left_local = [||];
    right_local = [||];
    pool = [||];
    n_components = 0;
    n_shards = 0;
    nl = 0;
    nr = 0;
    assignment = [||];
    right_load = [||];
  }

let max_shards t = t.max_shards
let n_components t = t.n_components
let n_shards t = t.n_shards
let component_of_left t = t.comp_of_left
let component_of_right t = t.comp_of_right

let shard_get t i =
  if i < 0 || i >= t.n_shards then invalid_arg "Shard: shard index out of range";
  t.pool.(i)

let shard_csr t i = (shard_get t i).csr
let shard_lefts t i = (shard_get t i).lefts
let shard_rights t i = (shard_get t i).rights
let assignment t = t.assignment
let right_load t = t.right_load

(* union-find: path halving + union by size *)
let rec find parent i =
  let p = parent.(i) in
  if p = i then i
  else begin
    parent.(i) <- parent.(p);
    find parent parent.(i)
  end

let union parent usize a b =
  let ra = find parent a and rb = find parent b in
  if ra <> rb then begin
    let ra, rb = if usize.(ra) >= usize.(rb) then (ra, rb) else (rb, ra) in
    parent.(rb) <- ra;
    usize.(ra) <- usize.(ra) + usize.(rb)
  end

let m_shard_count = Registry.gauge Registry.default "shard.count"
let m_shard_components = Registry.gauge Registry.default "shard.components"

let partition t csr =
  let nl = Csr.n_left csr and nr = Csr.n_right csr in
  let row_start = Csr.row_start csr and col = Csr.col csr in
  let caps = Csr.right_cap_array csr in
  t.nl <- nl;
  t.nr <- nr;
  let nv = nl + nr in
  let parent = ensure t.parent (max nv 1) in
  let usize = ensure t.usize (max nv 1) in
  t.parent <- parent;
  t.usize <- usize;
  for i = 0 to nv - 1 do
    parent.(i) <- i;
    usize.(i) <- 1
  done;
  let pe = Csr.packed_edges csr in
  let m = Csr.n_edges csr in
  for i = 0 to m - 1 do
    let p = pe.(i) in
    union parent usize (p lsr Csr.packed_shift) (nl + (p land Csr.packed_mask))
  done;
  (* dense component ids by first appearance, lefts ascending; a
     degree-0 vertex joins no component *)
  let comp_of_root = ensure t.comp_of_root (max nv 1) in
  let comp_of_left = ensure t.comp_of_left (max nl 1) in
  let comp_of_right = ensure t.comp_of_right (max nr 1) in
  t.comp_of_root <- comp_of_root;
  t.comp_of_left <- comp_of_left;
  t.comp_of_right <- comp_of_right;
  Array.fill comp_of_root 0 nv (-1);
  let ncomp = ref 0 in
  for l = 0 to nl - 1 do
    if row_start.(l + 1) > row_start.(l) then begin
      let r = find parent l in
      if comp_of_root.(r) < 0 then begin
        comp_of_root.(r) <- !ncomp;
        incr ncomp
      end;
      comp_of_left.(l) <- comp_of_root.(r)
    end
    else comp_of_left.(l) <- -1
  done;
  for r = 0 to nr - 1 do
    comp_of_right.(r) <- comp_of_root.(find parent (nl + r))
  done;
  let ncomp = !ncomp in
  t.n_components <- ncomp;
  (* balanced contiguous packing: component [c] goes to the shard its
     cumulative edge mass falls into, so composition depends only on
     the instance and [max_shards] *)
  let comp_edges = ensure t.comp_edges (max ncomp 1) in
  t.comp_edges <- comp_edges;
  Array.fill comp_edges 0 ncomp 0;
  for l = 0 to nl - 1 do
    let c = comp_of_left.(l) in
    if c >= 0 then comp_edges.(c) <- comp_edges.(c) + (row_start.(l + 1) - row_start.(l))
  done;
  let total_edges = ref 0 in
  for c = 0 to ncomp - 1 do
    total_edges := !total_edges + comp_edges.(c)
  done;
  let k = min t.max_shards ncomp in
  t.n_shards <- k;
  let shard_of_comp = ensure t.shard_of_comp (max ncomp 1) in
  t.shard_of_comp <- shard_of_comp;
  let cum = ref 0 in
  for c = 0 to ncomp - 1 do
    shard_of_comp.(c) <- min (k - 1) (!cum * k / max !total_edges 1);
    cum := !cum + comp_edges.(c)
  done;
  (* grow the shard pool, then assign local vertex ids in ascending
     global order so shard-local instances are canonical *)
  if Array.length t.pool < k then begin
    let pool = Array.init (next_cap k) (fun i ->
        if i < Array.length t.pool then t.pool.(i) else fresh_shard ())
    in
    t.pool <- pool
  end;
  for s = 0 to k - 1 do
    let sh = t.pool.(s) in
    sh.n_left <- 0;
    sh.n_right <- 0;
    sh.matched <- 0
  done;
  let left_local = ensure t.left_local (max nl 1) in
  let right_local = ensure t.right_local (max nr 1) in
  t.left_local <- left_local;
  t.right_local <- right_local;
  for l = 0 to nl - 1 do
    let c = comp_of_left.(l) in
    if c >= 0 then begin
      let sh = t.pool.(shard_of_comp.(c)) in
      let i = sh.n_left in
      sh.lefts <- ensure_keep sh.lefts (i + 1) i;
      sh.lefts.(i) <- l;
      left_local.(l) <- i;
      sh.n_left <- i + 1
    end
    else left_local.(l) <- -1
  done;
  for r = 0 to nr - 1 do
    let c = comp_of_right.(r) in
    if c >= 0 then begin
      let sh = t.pool.(shard_of_comp.(c)) in
      let i = sh.n_right in
      sh.rights <- ensure_keep sh.rights (i + 1) i;
      sh.rights.(i) <- r;
      right_local.(r) <- i;
      sh.n_right <- i + 1
    end
    else right_local.(r) <- -1
  done;
  for s = 0 to k - 1 do
    let sh = t.pool.(s) in
    Csr.reset sh.csr ~n_left:sh.n_left ~n_right:sh.n_right;
    for r = 0 to sh.n_right - 1 do
      Csr.set_right_cap sh.csr r caps.(sh.rights.(r))
    done
  done;
  for l = 0 to nl - 1 do
    let c = comp_of_left.(l) in
    if c >= 0 then begin
      let sh = t.pool.(shard_of_comp.(c)) in
      let ll = left_local.(l) in
      for i = row_start.(l) to row_start.(l + 1) - 1 do
        Csr.add_edge sh.csr ~left:ll ~right:right_local.(col.(i))
      done
    end
  done;
  Registry.set m_shard_count k;
  Registry.set m_shard_components ncomp

let solve ?jobs ?warm_start ?(layout = false) t csr =
  let nl = Csr.n_left csr and nr = Csr.n_right csr in
  (match warm_start with
  | Some w when Array.length w < nl -> invalid_arg "Shard.solve: warm_start too short"
  | _ -> ());
  partition t csr;
  let k = t.n_shards in
  (match warm_start with
  | None -> ()
  | Some w ->
      for s = 0 to k - 1 do
        let sh = t.pool.(s) in
        sh.warm <- ensure sh.warm (max sh.n_left 1);
        for l = 0 to sh.n_left - 1 do
          let g = sh.lefts.(l) in
          let wr = w.(g) in
          sh.warm.(l) <-
            (* a seat outside the left's own component could never be
               adjacent, so it projects to "no hint" *)
            (if wr >= 0 && t.comp_of_right.(wr) = t.comp_of_left.(g) then
               t.right_local.(wr)
             else -1)
        done
      done);
  (* each task owns its shard's csr, arena and registry outright;
     finalize runs inside the task so the counting sort of big shards
     parallelises too *)
  let solve_one s =
    let sh = t.pool.(s) in
    let warm = match warm_start with None -> None | Some _ -> Some sh.warm in
    let instance, warm =
      if layout then begin
        let instance = Layout.prepare sh.layout sh.csr in
        (instance, Option.map (Layout.project_warm sh.layout) warm)
      end
      else (sh.csr, warm)
    in
    let m = Hopcroft_karp.solve_csr ?warm_start:warm ~arena:sh.arena instance in
    if layout then Layout.commit sh.layout sh.arena;
    sh.matched <- m;
    Registry.incr (Registry.counter sh.reg "shard.solves");
    Registry.add (Registry.counter sh.reg "shard.lefts") sh.n_left;
    Registry.add (Registry.counter sh.reg "shard.edges") (Csr.n_edges sh.csr);
    Registry.add (Registry.counter sh.reg "shard.matched") m;
    m
  in
  let sizes = Vod_par.Par.map ?jobs ~f:solve_one k in
  (* absorb per-shard observations in fixed shard order, then zero the
     private registries so the next solve starts clean *)
  for s = 0 to k - 1 do
    Registry.absorb ~into:Registry.default t.pool.(s).reg;
    Registry.reset t.pool.(s).reg
  done;
  let assignment = ensure t.assignment (max nl 1) in
  let right_load = ensure t.right_load (max nr 1) in
  t.assignment <- assignment;
  t.right_load <- right_load;
  Array.fill assignment 0 nl (-1);
  Array.fill right_load 0 nr 0;
  for s = 0 to k - 1 do
    let sh = t.pool.(s) in
    let a = Arena.assignment sh.arena in
    let rl = Arena.right_load sh.arena in
    for l = 0 to sh.n_left - 1 do
      let m = a.(l) in
      if m >= 0 then assignment.(sh.lefts.(l)) <- sh.rights.(m)
    done;
    for r = 0 to sh.n_right - 1 do
      right_load.(sh.rights.(r)) <- rl.(r)
    done
  done;
  Array.fold_left ( + ) 0 sizes
