(** Bipartite b-matching instances — the "connection matching" of the
    paper (Section 2.2).  Left vertices are stripe requests (each needs
    exactly one server), right vertices are boxes with an integral number
    of upload slots; an edge means the box possesses the data the request
    needs next round.

    Lemma 1 (min-cut max-flow / generalised Hall): a full matching exists
    iff every request subset [X] satisfies [slots(B(X)) >= |X|].  When no
    full matching exists, {!hall_violator} extracts a violating set from
    the minimum cut as an explicit infeasibility certificate. *)

type t

val create : n_left:int -> n_right:int -> right_cap:int array -> t
(** @raise Invalid_argument on negative sizes or capacities, or when
    [right_cap] has length other than [n_right]. *)

val reset : t -> n_left:int -> n_right:int -> right_cap:int array -> unit
(** Rewind to an empty instance of the given (possibly different) shape,
    reusing every backing buffer — the engine's per-round rebuild path;
    once buffers reach their high-water mark a reset + refill allocates
    nothing.  Same validation as {!create}. *)

val delta_rebuild :
  t ->
  n_left:int ->
  right_cap:int array ->
  src_of:(int -> int) ->
  fill:(int -> (int -> unit) -> unit) ->
  unit
(** Rebuild the instance for the next round from the current one,
    copying unchanged rows and re-emitting only dirty ones — the
    engine's churn-proportional alternative to {!reset} + {!add_edge}.
    [src_of l] names the current row new row [l] copies verbatim, or
    [-1] for a row refilled by [fill l emit]; the number of rights is
    unchanged and their capacities are set from [right_cap].  See
    {!Csr.rebuild_rows} for cost and the frozen-instance caveat
    ({!add_edge} raises until the next {!reset}).
    @raise Invalid_argument as {!reset}, or as {!Csr.rebuild_rows}. *)

val add_edge : t -> left:int -> right:int -> unit
(** Declares that box [right] can serve request [left].  Duplicate edges
    are tolerated (they do not change the instance).
    @raise Invalid_argument on out-of-range endpoints. *)

val n_left : t -> int
val n_right : t -> int
val right_cap : t -> int array

val csr : t -> Csr.t
(** The instance's flat CSR representation, finalized (borrowed: owned
    by the instance, invalidated by {!reset}; mutating it directly is
    not allowed).  This is what the CSR solver cores traverse; exposed
    so harnesses can call e.g. [Hopcroft_karp.solve_csr] without an
    adjacency materialisation. *)

val adjacency : t -> int array array
(** Left-to-right adjacency, sorted per row with duplicates removed
    (memoised; allocated on first use — the legacy/certificate view). *)

val degree : t -> int -> int
(** Number of distinct boxes able to serve a request. *)

type algorithm = Dinic_flow | Push_relabel_flow | Hopcroft_karp_matching

type outcome = {
  matched : int;  (** Number of requests served. *)
  assignment : int array;  (** request -> serving box, or -1. *)
  right_load : int array;  (** Slots used per box. *)
}

val solve : ?arena:Arena.t -> ?algorithm:algorithm -> ?layout:bool -> t -> outcome
(** Maximum matching; default algorithm {!Dinic_flow}.  All three
    algorithms run their CSR/arena cores; pass [arena] (one per engine /
    harness / parallel task — arenas are not domain-safe) to reuse the
    scratch buffers across calls, otherwise a fresh arena is allocated.
    The returned [outcome] arrays are freshly allocated and owned by the
    caller either way.

    [layout] (default false) runs the solver on a {!Layout}
    component-clustered renumbering of the instance and unpermutes the
    result, so multi-component instances traverse contiguous memory.
    For {!Hopcroft_karp_matching} and {!Dinic_flow} the outcome is
    bit-identical to the identity layout (the permutation is
    order-preserving per component — DESIGN.md section 12); for
    {!Push_relabel_flow} only the matching size is guaranteed. *)

val solve_legacy : ?algorithm:algorithm -> t -> outcome
(** The historical solver paths — an explicit {!Flow_network} for
    {!Dinic_flow} / {!Push_relabel_flow} and slot expansion for
    {!Hopcroft_karp_matching} — kept as independent implementations for
    the vod_check oracle panel to diff against {!solve}. *)

val solve_min_cost : t -> edge_cost:(left:int -> right:int -> int) -> outcome
(** Maximum matching of minimum total edge cost (successive shortest
    paths).  The matching size always equals {!solve}'s; among all
    maximum matchings the one minimising the sum of [edge_cost] over
    used request-to-box connections is returned.  Used by the engine's
    cache-preferring scheduler. *)

val solve_greedy :
  ?until_stable:bool ->
  ?warm_start:int array ->
  rounds:int ->
  Vod_util.Prng.t ->
  t ->
  outcome
(** Distributed-flavoured matching by parallel proposal rounds: each
    unmatched request proposes to a uniformly random adjacent box with
    spare capacity; boxes accept proposals up to capacity (random
    subset when oversubscribed); accepted connections persist.  After
    [rounds] rounds (or, with [until_stable], once no proposal can be
    made) the partial matching is returned.  When stable the matching
    is {e maximal}, hence at least half the optimum; with few rounds it
    models what boxes can negotiate without any global view.
    [warm_start] pre-seats requests on their previous servers (entries
    are box ids or -1; invalid or over-capacity seats are ignored) —
    persistent connections, as a deployed system would keep. *)

val is_feasible : ?algorithm:algorithm -> t -> bool
(** True iff every request can be served simultaneously. *)

type violator = {
  requests : int list;  (** The set X of requests. *)
  servers : int list;  (** B(X): every box adjacent to X. *)
  server_slots : int;  (** Total upload slots of B(X), < |X|. *)
}

val hall_violator : t -> violator option
(** [None] when the instance is feasible; otherwise a certificate set
    [X] with [slots(B(X)) < |X|], extracted from the min cut of a
    maximum flow. *)

(** Warm-start incremental solving.

    The engine's per-round instances differ by a small delta (arrivals,
    departures, playback advance, cache churn — at most a factor [mu]
    of swarm growth between rounds), so the previous round's matching is
    an excellent starting point.  {!Incremental.solve} re-seats each
    request on its previous server when that seat is still valid in the
    {e current} instance, then repairs only the augmenting paths the
    delta disturbed; when the delta exceeds [fallback_threshold] (the
    fraction of requests whose seat did not survive) it falls back to a
    from-scratch solve.  Either way the result is a true {e maximum}
    matching — warm starts change the work, never the cardinality. *)
module Incremental : sig
  type stats = {
    rounds : int;  (** Total {!solve} calls. *)
    full_solves : int;  (** Rounds that fell back to a scratch solve. *)
    incremental_solves : int;  (** Rounds solved by warm-start repair. *)
    reseated : int;  (** Warm seats that survived validation, summed. *)
    repaired : int;  (** Requests matched by repair augmentation, summed. *)
  }

  type state
  (** Persistent engine state: chosen backend, fallback threshold and
      lifetime counters.  The previous matching itself is supplied by
      the caller per round (as [warm_start]) because request indices are
      re-numbered between rounds; the caller owns the identity map. *)

  val create : ?algorithm:algorithm -> ?fallback_threshold:float -> unit -> state
  (** Backend [algorithm] must be {!Hopcroft_karp_matching} (default;
      pure combinatorial repair, no network construction) or
      {!Dinic_flow} (pre-pushed residual flow).  [fallback_threshold]
      (default 0.5) is the dirty-request fraction above which a scratch
      solve is cheaper than repair.
      @raise Invalid_argument on {!Push_relabel_flow} or a threshold
      outside [0, 1]. *)

  val solve :
    state -> ?arena:Arena.t -> ?warm_start:int array -> ?layout:bool -> t -> outcome
  (** [warm_start] maps each left to its previous server (or -1); seats
      invalidated by the delta are dropped before repair.  Omitting it
      is a cold start (counts as a full solve when [n_left > 0]).
      [arena] as in {!val:solve}: seat validation and both repair
      backends run entirely in arena scratch.  [layout] as in
      {!val:solve}: validated seats are projected into the permuted id
      space before repair, and the outcome is unpermuted — bit-identical
      for both backends.
      @raise Invalid_argument on a length mismatch. *)

  val stats : state -> stats
end

val solve_incremental :
  Incremental.state ->
  ?arena:Arena.t ->
  ?warm_start:int array ->
  ?layout:bool ->
  t ->
  outcome
(** Alias for {!Incremental.solve}: maximum matching via warm-start
    delta repair with scratch fallback. *)
