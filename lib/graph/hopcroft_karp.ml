type result = { size : int; assignment : int array; right_load : int array }

let infinity_dist = max_int

(* Observability hooks (registered once; O(1) per event recorded). *)
let obs_phases = Vod_obs.Registry.counter Vod_obs.Registry.default "hk.bfs_phases"
let obs_paths = Vod_obs.Registry.counter Vod_obs.Registry.default "hk.augmenting_paths"
let obs_path_len = Vod_obs.Registry.histogram Vod_obs.Registry.default "hk.path_length"

(* Flat CSR core.  Right capacities are handled with per-right seat
   counters instead of slot expansion: the seats taken on right [r] sit
   compactly in [seats.(seat_start.(r)) .. seats.(seat_start.(r) +
   fill.(r) - 1)] (each cell holding the occupying left), so a free seat
   is an O(1) counter test and relaxing the occupants of [r] scans
   exactly [fill.(r)] cells.  The compaction invariant holds because a
   seat, once taken, is only ever transferred (displacement swaps the
   occupant in place), never vacated, within one solve.  All scratch
   lives in the arena: steady-state calls allocate nothing. *)
let solve_csr ?warm_start ~arena csr =
  let nl = Csr.n_left csr and nr = Csr.n_right csr in
  let row_start = Csr.row_start csr and col = Csr.col csr in
  let cap = Csr.right_cap_array csr in
  let seat_start = Arena.ints arena.Arena.seat_start (nr + 1) in
  seat_start.(0) <- 0;
  for r = 0 to nr - 1 do
    seat_start.(r + 1) <- seat_start.(r) + cap.(r)
  done;
  let match_left = Arena.ints arena.Arena.assignment (max nl 1) in
  let fill = Arena.ints arena.Arena.right_load (max nr 1) in
  let seats = Arena.ints arena.Arena.seats (max seat_start.(nr) 1) in
  let dist = Arena.ints arena.Arena.hk_dist (max nl 1) in
  let queue = Arena.ints arena.Arena.queue (max nl 1) in
  Array.fill match_left 0 nl (-1);
  Array.fill fill 0 nr 0;
  let size = ref 0 in
  (* Warm start: re-seat each request on its previous box when that box
     is still adjacent and has a free seat.  The seats form a valid
     partial matching, so the phases below only have to augment from the
     requests the round-to-round delta actually disturbed (Berge:
     augmenting to exhaustion from any matching reaches a maximum). *)
  (match warm_start with
  | None -> ()
  | Some ws ->
      (* at least [nl]: arena slabs are capacity-sized, extra cells ignored *)
      if Array.length ws < nl then
        invalid_arg "Hopcroft_karp.solve_csr: warm_start length";
      for l = 0 to nl - 1 do
        let r = ws.(l) in
        if r >= 0 && r < nr && fill.(r) < cap.(r) then begin
          let adjacent = ref false in
          let i = ref row_start.(l) in
          let stop = row_start.(l + 1) in
          while (not !adjacent) && !i < stop do
            if col.(!i) = r then adjacent := true;
            incr i
          done;
          if !adjacent then begin
            seats.(seat_start.(r) + fill.(r)) <- l;
            fill.(r) <- fill.(r) + 1;
            match_left.(l) <- r;
            incr size
          end
        end
      done);
  let bfs () =
    let head = ref 0 and tail = ref 0 in
    Array.fill dist 0 nl infinity_dist;
    for l = 0 to nl - 1 do
      if match_left.(l) = -1 then begin
        dist.(l) <- 0;
        queue.(!tail) <- l;
        incr tail
      end
    done;
    let found = ref false in
    while !head < !tail do
      let l = queue.(!head) in
      incr head;
      for i = row_start.(l) to row_start.(l + 1) - 1 do
        let r = col.(i) in
        if fill.(r) < cap.(r) then found := true
        else begin
          let stop = seat_start.(r) + fill.(r) in
          for s = seat_start.(r) to stop - 1 do
            let l' = seats.(s) in
            if dist.(l') = infinity_dist then begin
              dist.(l') <- dist.(l) + 1;
              queue.(!tail) <- l';
              incr tail
            end
          done
        end
      done
    done;
    !found
  in
  (* depth of the frame that found a free seat, in left-vertex hops:
     the augmenting path has [2 * depth + 1] edges *)
  let found_depth = ref 0 in
  let rec try_augment l depth =
    let success = ref false in
    let i = ref row_start.(l) in
    let stop_i = row_start.(l + 1) in
    while (not !success) && !i < stop_i do
      let r = col.(!i) in
      if fill.(r) < cap.(r) then begin
        found_depth := depth;
        seats.(seat_start.(r) + fill.(r)) <- l;
        fill.(r) <- fill.(r) + 1;
        match_left.(l) <- r;
        success := true
      end
      else begin
        let s = ref seat_start.(r) in
        (* [fill.(r)] is pinned at [cap.(r)] here, so the segment bound
           cannot move under the recursion *)
        let stop_s = seat_start.(r) + fill.(r) in
        while (not !success) && !s < stop_s do
          let owner = seats.(!s) in
          if dist.(owner) = dist.(l) + 1 && try_augment owner (depth + 1) then begin
            seats.(!s) <- l;
            match_left.(l) <- r;
            success := true
          end;
          incr s
        done
      end;
      incr i
    done;
    if not !success then dist.(l) <- infinity_dist;
    !success
  in
  while bfs () do
    Vod_obs.Registry.incr obs_phases;
    for l = 0 to nl - 1 do
      if match_left.(l) = -1 && try_augment l 0 then begin
        incr size;
        Vod_obs.Registry.incr obs_paths;
        Vod_obs.Registry.observe obs_path_len ((2 * !found_depth) + 1)
      end
    done
  done;
  !size

(* Legacy path: right vertices expanded into unit "slots" (one per
   capacity unit), reducing the capacitated problem to textbook
   Hopcroft-Karp.  Slot ids for right [r] are [slot_start.(r) ..
   slot_start.(r+1) - 1].  Kept as an independent implementation so the
   vod_check oracle panel can diff the CSR core against it. *)
let solve_slots ?warm_start ~n_left ~n_right ~adj ~right_cap () =
  if Array.length adj <> n_left then invalid_arg "Hopcroft_karp.solve: adj length";
  if Array.length right_cap <> n_right then
    invalid_arg "Hopcroft_karp.solve: right_cap length";
  (match warm_start with
  | Some ws when Array.length ws <> n_left ->
      invalid_arg "Hopcroft_karp.solve: warm_start length"
  | _ -> ());
  Array.iter
    (fun c -> if c < 0 then invalid_arg "Hopcroft_karp.solve: negative cap")
    right_cap;
  Array.iter
    (Array.iter (fun r ->
         if r < 0 || r >= n_right then invalid_arg "Hopcroft_karp.solve: adj out of range"))
    adj;
  let slot_start = Array.make (n_right + 1) 0 in
  for r = 0 to n_right - 1 do
    slot_start.(r + 1) <- slot_start.(r) + right_cap.(r)
  done;
  let n_slots = slot_start.(n_right) in
  let slot_right = Array.make (max n_slots 1) 0 in
  for r = 0 to n_right - 1 do
    for s = slot_start.(r) to slot_start.(r + 1) - 1 do
      slot_right.(s) <- r
    done
  done;
  let match_left = Array.make n_left (-1) (* left -> slot *) in
  let match_slot = Array.make (max n_slots 1) (-1) (* slot -> left *) in
  let size = ref 0 in
  (match warm_start with
  | None -> ()
  | Some ws ->
      let fill = Array.make (max n_right 1) 0 in
      Array.iteri
        (fun l r ->
          if
            r >= 0 && r < n_right
            && fill.(r) < right_cap.(r)
            && Array.mem r adj.(l)
          then begin
            let s = slot_start.(r) + fill.(r) in
            fill.(r) <- fill.(r) + 1;
            match_left.(l) <- s;
            match_slot.(s) <- l;
            incr size
          end)
        ws);
  let dist = Array.make n_left infinity_dist in
  let queue = Queue.create () in
  let iter_slots l f =
    Array.iter
      (fun r ->
        for s = slot_start.(r) to slot_start.(r + 1) - 1 do
          f s
        done)
      adj.(l)
  in
  let bfs () =
    Queue.clear queue;
    Array.fill dist 0 n_left infinity_dist;
    for l = 0 to n_left - 1 do
      if match_left.(l) = -1 then begin
        dist.(l) <- 0;
        Queue.add l queue
      end
    done;
    let found = ref false in
    while not (Queue.is_empty queue) do
      let l = Queue.pop queue in
      iter_slots l (fun s ->
          match match_slot.(s) with
          | -1 -> found := true
          | l' ->
              if dist.(l') = infinity_dist then begin
                dist.(l') <- dist.(l) + 1;
                Queue.add l' queue
              end)
    done;
    !found
  in
  let found_depth = ref 0 in
  let rec try_augment l depth =
    let success = ref false in
    let arcs = adj.(l) in
    let i = ref 0 in
    while (not !success) && !i < Array.length arcs do
      let r = arcs.(!i) in
      let s = ref slot_start.(r) in
      while (not !success) && !s < slot_start.(r + 1) do
        let owner = match_slot.(!s) in
        if
          (if owner = -1 then begin
             found_depth := depth;
             true
           end
           else dist.(owner) = dist.(l) + 1 && try_augment owner (depth + 1))
        then begin
          match_slot.(!s) <- l;
          match_left.(l) <- !s;
          success := true
        end;
        incr s
      done;
      incr i
    done;
    if not !success then dist.(l) <- infinity_dist;
    !success
  in
  while bfs () do
    Vod_obs.Registry.incr obs_phases;
    for l = 0 to n_left - 1 do
      if match_left.(l) = -1 && try_augment l 0 then begin
        incr size;
        Vod_obs.Registry.incr obs_paths;
        Vod_obs.Registry.observe obs_path_len ((2 * !found_depth) + 1)
      end
    done
  done;
  let assignment = Array.map (fun s -> if s = -1 then -1 else slot_right.(s)) match_left in
  let right_load = Array.make n_right 0 in
  Array.iter (fun r -> if r >= 0 then right_load.(r) <- right_load.(r) + 1) assignment;
  { size = !size; assignment; right_load }

(* Thin shim over the CSR core: same signature and validation as the
   historical entry point, paying one instance + arena allocation. *)
let solve ?warm_start ~n_left ~n_right ~adj ~right_cap () =
  if Array.length adj <> n_left then invalid_arg "Hopcroft_karp.solve: adj length";
  if Array.length right_cap <> n_right then
    invalid_arg "Hopcroft_karp.solve: right_cap length";
  (match warm_start with
  | Some ws when Array.length ws <> n_left ->
      invalid_arg "Hopcroft_karp.solve: warm_start length"
  | _ -> ());
  Array.iter
    (fun c -> if c < 0 then invalid_arg "Hopcroft_karp.solve: negative cap")
    right_cap;
  Array.iter
    (Array.iter (fun r ->
         if r < 0 || r >= n_right then invalid_arg "Hopcroft_karp.solve: adj out of range"))
    adj;
  let csr = Csr.of_adjacency ~right_cap ~n_right adj in
  let arena = Arena.create () in
  let size = solve_csr ?warm_start ~arena csr in
  {
    size;
    assignment = Array.sub (Arena.assignment arena) 0 n_left;
    right_load = Array.sub (Arena.right_load arena) 0 n_right;
  }
