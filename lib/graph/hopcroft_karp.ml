type result = { size : int; assignment : int array; right_load : int array }

let infinity_dist = max_int

(* Observability hooks (registered once; O(1) per event recorded). *)
let obs_phases = Vod_obs.Registry.counter Vod_obs.Registry.default "hk.bfs_phases"
let obs_paths = Vod_obs.Registry.counter Vod_obs.Registry.default "hk.augmenting_paths"
let obs_path_len = Vod_obs.Registry.histogram Vod_obs.Registry.default "hk.path_length"

(* Right vertices are expanded into unit "slots" (one per capacity unit),
   reducing the capacitated problem to textbook Hopcroft-Karp.  Slot ids
   for right [r] are [slot_start.(r) .. slot_start.(r+1) - 1]. *)
let solve ?warm_start ~n_left ~n_right ~adj ~right_cap () =
  if Array.length adj <> n_left then invalid_arg "Hopcroft_karp.solve: adj length";
  if Array.length right_cap <> n_right then
    invalid_arg "Hopcroft_karp.solve: right_cap length";
  (match warm_start with
  | Some ws when Array.length ws <> n_left ->
      invalid_arg "Hopcroft_karp.solve: warm_start length"
  | _ -> ());
  Array.iter
    (fun c -> if c < 0 then invalid_arg "Hopcroft_karp.solve: negative cap")
    right_cap;
  Array.iter
    (Array.iter (fun r ->
         if r < 0 || r >= n_right then invalid_arg "Hopcroft_karp.solve: adj out of range"))
    adj;
  let slot_start = Array.make (n_right + 1) 0 in
  for r = 0 to n_right - 1 do
    slot_start.(r + 1) <- slot_start.(r) + right_cap.(r)
  done;
  let n_slots = slot_start.(n_right) in
  let slot_right = Array.make (max n_slots 1) 0 in
  for r = 0 to n_right - 1 do
    for s = slot_start.(r) to slot_start.(r + 1) - 1 do
      slot_right.(s) <- r
    done
  done;
  let match_left = Array.make n_left (-1) (* left -> slot *) in
  let match_slot = Array.make (max n_slots 1) (-1) (* slot -> left *) in
  let size = ref 0 in
  (* Warm start: re-seat each request on its previous box when that box
     is still adjacent and has a free slot.  The seats form a valid
     partial matching, so the phases below only have to augment from the
     requests the round-to-round delta actually disturbed (Berge:
     augmenting to exhaustion from any matching reaches a maximum). *)
  (match warm_start with
  | None -> ()
  | Some ws ->
      let fill = Array.make (max n_right 1) 0 in
      Array.iteri
        (fun l r ->
          if
            r >= 0 && r < n_right
            && fill.(r) < right_cap.(r)
            && Array.mem r adj.(l)
          then begin
            let s = slot_start.(r) + fill.(r) in
            fill.(r) <- fill.(r) + 1;
            match_left.(l) <- s;
            match_slot.(s) <- l;
            incr size
          end)
        ws);
  let dist = Array.make n_left infinity_dist in
  let queue = Queue.create () in
  let iter_slots l f =
    Array.iter
      (fun r ->
        for s = slot_start.(r) to slot_start.(r + 1) - 1 do
          f s
        done)
      adj.(l)
  in
  let bfs () =
    Queue.clear queue;
    Array.fill dist 0 n_left infinity_dist;
    for l = 0 to n_left - 1 do
      if match_left.(l) = -1 then begin
        dist.(l) <- 0;
        Queue.add l queue
      end
    done;
    let found = ref false in
    while not (Queue.is_empty queue) do
      let l = Queue.pop queue in
      iter_slots l (fun s ->
          match match_slot.(s) with
          | -1 -> found := true
          | l' ->
              if dist.(l') = infinity_dist then begin
                dist.(l') <- dist.(l) + 1;
                Queue.add l' queue
              end)
    done;
    !found
  in
  (* depth of the frame that found a free slot, in left-vertex hops:
     the augmenting path has [2 * depth + 1] edges *)
  let found_depth = ref 0 in
  let rec try_augment l depth =
    let success = ref false in
    let arcs = adj.(l) in
    let i = ref 0 in
    while (not !success) && !i < Array.length arcs do
      let r = arcs.(!i) in
      let s = ref slot_start.(r) in
      while (not !success) && !s < slot_start.(r + 1) do
        let owner = match_slot.(!s) in
        if
          (if owner = -1 then begin
             found_depth := depth;
             true
           end
           else dist.(owner) = dist.(l) + 1 && try_augment owner (depth + 1))
        then begin
          match_slot.(!s) <- l;
          match_left.(l) <- !s;
          success := true
        end;
        incr s
      done;
      incr i
    done;
    if not !success then dist.(l) <- infinity_dist;
    !success
  in
  while bfs () do
    Vod_obs.Registry.incr obs_phases;
    for l = 0 to n_left - 1 do
      if match_left.(l) = -1 && try_augment l 0 then begin
        incr size;
        Vod_obs.Registry.incr obs_paths;
        Vod_obs.Registry.observe obs_path_len ((2 * !found_depth) + 1)
      end
    done
  done;
  let assignment = Array.map (fun s -> if s = -1 then -1 else slot_right.(s)) match_left in
  let right_load = Array.make n_right 0 in
  Array.iter (fun r -> if r >= 0 then right_load.(r) <- right_load.(r) + 1) assignment;
  { size = !size; assignment; right_load }
