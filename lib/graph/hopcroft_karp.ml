open Vod_util

type result = { size : int; assignment : int array; right_load : int array }

let infinity_dist = max_int

(* Observability hooks (registered once; O(1) per event recorded). *)
let obs_phases = Vod_obs.Registry.counter Vod_obs.Registry.default "hk.bfs_phases"
let obs_paths = Vod_obs.Registry.counter Vod_obs.Registry.default "hk.augmenting_paths"
let obs_path_len = Vod_obs.Registry.histogram Vod_obs.Registry.default "hk.path_length"

(* Flat CSR core.  Right capacities are handled with per-right seat
   counters instead of slot expansion: the seats taken on right [r] sit
   compactly in [seats.(seat_start.(r)) .. seats.(seat_start.(r) +
   fill.(r) - 1)] (each cell holding the occupying left), so a free seat
   is an O(1) counter test and relaxing the occupants of [r] scans
   exactly [fill.(r)] cells.  The compaction invariant holds because a
   seat, once taken, is only ever transferred (displacement swaps the
   occupant in place), never vacated, within one solve.

   The BFS is word-parallel and layered: each layer ORs its rows into a
   right-side frontier bitset (one OR per edge, no membership branch),
   strips already-visited rights with one and-not sweep, probes for a
   free seat with one intersection sweep, and stops at the first layer
   holding one — the classic Hopcroft-Karp shortest-phase rule, so each
   phase augments only along shortest paths.  [dist] is versioned by a
   per-phase [base] offset (values below [base] mean unvisited), which
   replaces the O(n_left) distance fill each phase with one addition.

   Phases restricted to one connected component behave exactly as a
   solo run on that component: BFS layers, the free-seat probe and the
   DFS never cross component boundaries, and a component whose shortest
   free layer exceeds the global stop layer merely dead-marks a few
   dist entries that the next phase's [base] bump revives.  This is the
   component-local determinism contract [Shard] and [Layout] rely on
   (DESIGN.md section 12).  All scratch lives in the arena:
   steady-state calls allocate nothing. *)
let solve_csr ?warm_start ~arena csr =
  let nl = Csr.n_left csr and nr = Csr.n_right csr in
  let row_start = Csr.row_start csr and col = Csr.col csr in
  let cap = Csr.right_cap_array csr in
  let seat_start = Arena.ints arena.Arena.seat_start (nr + 1) in
  seat_start.(0) <- 0;
  for r = 0 to nr - 1 do
    seat_start.(r + 1) <- seat_start.(r) + cap.(r)
  done;
  let match_left = Arena.ints arena.Arena.assignment (max nl 1) in
  let fill = Arena.ints arena.Arena.right_load (max nr 1) in
  let seats = Arena.ints arena.Arena.seats (max seat_start.(nr) 1) in
  let dist = Arena.ints arena.Arena.hk_dist (max nl 1) in
  let queue = Arena.ints arena.Arena.queue (max nl 1) in
  let free_left = Arena.bits arena.Arena.free_left nl in
  let free_right = Arena.bits arena.Arena.free_right nr in
  let frontier = Arena.bits arena.Arena.frontier nr in
  let visited = Arena.bits arena.Arena.visited_right nr in
  Array.fill match_left 0 nl (-1);
  Array.fill fill 0 nr 0;
  (* versioned dist: 0 everywhere is "never visited" for every phase *)
  Array.fill dist 0 nl 0;
  Bitset.set_prefix free_left nl;
  Bitset.clear free_right;
  for r = 0 to nr - 1 do
    if cap.(r) > 0 then Bitset.unsafe_add free_right r
  done;
  let size = ref 0 in
  (* seat [l] on [r]; caller guarantees a free seat and counts the size *)
  let take_seat l r =
    seats.(seat_start.(r) + fill.(r)) <- l;
    let f = fill.(r) + 1 in
    fill.(r) <- f;
    if f = cap.(r) then Bitset.unsafe_remove free_right r;
    match_left.(l) <- r
  in
  (* Warm start: re-seat each request on its previous box when that box
     is still adjacent and has a free seat.  The seats form a valid
     partial matching, so the phases below only have to augment from the
     requests the round-to-round delta actually disturbed (Berge:
     augmenting to exhaustion from any matching reaches a maximum). *)
  (match warm_start with
  | None -> ()
  | Some ws ->
      (* at least [nl]: arena slabs are capacity-sized, extra cells ignored *)
      if Array.length ws < nl then
        invalid_arg "Hopcroft_karp.solve_csr: warm_start length";
      for l = 0 to nl - 1 do
        let r = ws.(l) in
        if r >= 0 && r < nr && fill.(r) < cap.(r) then begin
          let adjacent = ref false in
          let i = ref row_start.(l) in
          let stop = row_start.(l + 1) in
          while (not !adjacent) && !i < stop do
            if col.(!i) = r then adjacent := true;
            incr i
          done;
          if !adjacent then begin
            take_seat l r;
            Bitset.unsafe_remove free_left l;
            incr size
          end
        end
      done);
  (* Greedy first-fit pass: each free request takes the first adjacent
     free seat.  Identical to what the first phase would do (depth-0
     roots take the first free seat and never displace, because every
     dist is equal), but with an early row break instead of a full
     frontier build — most requests match here, so the phases below
     start from a near-maximum matching. *)
  let l = ref (Bitset.next_set_bit free_left 0) in
  while !l >= 0 do
    let li = !l in
    let i = ref row_start.(li) in
    let stop = row_start.(li + 1) in
    let got = ref false in
    while (not !got) && !i < stop do
      let r = col.(!i) in
      if Bitset.unsafe_mem free_right r then begin
        take_seat li r;
        Bitset.unsafe_remove free_left li;
        incr size;
        got := true
      end;
      incr i
    done;
    l := Bitset.next_set_bit free_left (li + 1)
  done;
  let fw = Bitset.words frontier in
  let wsh = Bitset.word_shift and bmask = Bitset.bit_mask in
  let base = ref 1 in
  let bfs () =
    Bitset.clear visited;
    let tail = ref 0 in
    Bitset.iter
      (fun l ->
        dist.(l) <- !base;
        queue.(!tail) <- l;
        incr tail)
      free_left;
    let found = ref false in
    let exhausted = ref false in
    let layer_start = ref 0 in
    let d = ref 0 in
    while (not !found) && not !exhausted do
      let layer_end = !tail in
      if !layer_start >= layer_end then exhausted := true
      else begin
        Bitset.clear frontier;
        for qi = !layer_start to layer_end - 1 do
          let lq = Array.unsafe_get queue qi in
          for i = row_start.(lq) to row_start.(lq + 1) - 1 do
            let r = Array.unsafe_get col i in
            let w = r lsr wsh in
            Array.unsafe_set fw w (Array.unsafe_get fw w lor (1 lsl (r land bmask)))
          done
        done;
        Bitset.andnot_into ~dst:frontier visited;
        if Bitset.intersects frontier free_right then found := true
        else begin
          Bitset.union_into ~dst:visited frontier;
          let dnext = !base + !d + 1 in
          Bitset.iter
            (fun r ->
              let stop = seat_start.(r) + fill.(r) in
              for s = seat_start.(r) to stop - 1 do
                let l' = Array.unsafe_get seats s in
                if dist.(l') < !base then begin
                  dist.(l') <- dnext;
                  queue.(!tail) <- l';
                  incr tail
                end
              done)
            frontier;
          layer_start := layer_end;
          incr d
        end
      end
    done;
    !found
  in
  (* depth of the frame that found a free seat, in left-vertex hops:
     the augmenting path has [2 * depth + 1] edges *)
  let found_depth = ref 0 in
  let rec try_augment l depth =
    let success = ref false in
    let i = ref row_start.(l) in
    let stop_i = row_start.(l + 1) in
    while (not !success) && !i < stop_i do
      let r = col.(!i) in
      if Bitset.unsafe_mem free_right r then begin
        found_depth := depth;
        take_seat l r;
        success := true
      end
      else begin
        let s = ref seat_start.(r) in
        (* [fill.(r)] is pinned at [cap.(r)] here, so the segment bound
           cannot move under the recursion *)
        let stop_s = seat_start.(r) + fill.(r) in
        while (not !success) && !s < stop_s do
          let owner = seats.(!s) in
          if dist.(owner) = dist.(l) + 1 && try_augment owner (depth + 1) then begin
            seats.(!s) <- l;
            match_left.(l) <- r;
            success := true
          end;
          incr s
        done
      end;
      incr i
    done;
    (* dead mark: 0 is below every live [base], so the entry reads as
       unvisited once the next phase bumps the version *)
    if not !success then dist.(l) <- 0;
    !success
  in
  while bfs () do
    Vod_obs.Registry.incr obs_phases;
    let l = ref (Bitset.next_set_bit free_left 0) in
    while !l >= 0 do
      let li = !l in
      if try_augment li 0 then begin
        Bitset.unsafe_remove free_left li;
        incr size;
        Vod_obs.Registry.incr obs_paths;
        Vod_obs.Registry.observe obs_path_len ((2 * !found_depth) + 1)
      end;
      l := Bitset.next_set_bit free_left (li + 1)
    done;
    (* phase values reach [base + d + 1 <= base + nl + 1]; the bump puts
       the next phase's [base] above all of them *)
    base := !base + nl + 2
  done;
  !size

(* Legacy path: right vertices expanded into unit "slots" (one per
   capacity unit), reducing the capacitated problem to textbook
   Hopcroft-Karp.  Slot ids for right [r] are [slot_start.(r) ..
   slot_start.(r+1) - 1].  Kept as an independent implementation so the
   vod_check oracle panel can diff the CSR core against it. *)
let solve_slots ?warm_start ~n_left ~n_right ~adj ~right_cap () =
  if Array.length adj <> n_left then invalid_arg "Hopcroft_karp.solve: adj length";
  if Array.length right_cap <> n_right then
    invalid_arg "Hopcroft_karp.solve: right_cap length";
  (match warm_start with
  | Some ws when Array.length ws <> n_left ->
      invalid_arg "Hopcroft_karp.solve: warm_start length"
  | _ -> ());
  Array.iter
    (fun c -> if c < 0 then invalid_arg "Hopcroft_karp.solve: negative cap")
    right_cap;
  Array.iter
    (Array.iter (fun r ->
         if r < 0 || r >= n_right then invalid_arg "Hopcroft_karp.solve: adj out of range"))
    adj;
  let slot_start = Array.make (n_right + 1) 0 in
  for r = 0 to n_right - 1 do
    slot_start.(r + 1) <- slot_start.(r) + right_cap.(r)
  done;
  let n_slots = slot_start.(n_right) in
  let slot_right = Array.make (max n_slots 1) 0 in
  for r = 0 to n_right - 1 do
    for s = slot_start.(r) to slot_start.(r + 1) - 1 do
      slot_right.(s) <- r
    done
  done;
  let match_left = Array.make n_left (-1) (* left -> slot *) in
  let match_slot = Array.make (max n_slots 1) (-1) (* slot -> left *) in
  let size = ref 0 in
  (match warm_start with
  | None -> ()
  | Some ws ->
      let fill = Array.make (max n_right 1) 0 in
      Array.iteri
        (fun l r ->
          if
            r >= 0 && r < n_right
            && fill.(r) < right_cap.(r)
            && Array.mem r adj.(l)
          then begin
            let s = slot_start.(r) + fill.(r) in
            fill.(r) <- fill.(r) + 1;
            match_left.(l) <- s;
            match_slot.(s) <- l;
            incr size
          end)
        ws);
  let dist = Array.make n_left infinity_dist in
  let queue = Queue.create () in
  let iter_slots l f =
    Array.iter
      (fun r ->
        for s = slot_start.(r) to slot_start.(r + 1) - 1 do
          f s
        done)
      adj.(l)
  in
  let bfs () =
    Queue.clear queue;
    Array.fill dist 0 n_left infinity_dist;
    for l = 0 to n_left - 1 do
      if match_left.(l) = -1 then begin
        dist.(l) <- 0;
        Queue.add l queue
      end
    done;
    let found = ref false in
    while not (Queue.is_empty queue) do
      let l = Queue.pop queue in
      iter_slots l (fun s ->
          match match_slot.(s) with
          | -1 -> found := true
          | l' ->
              if dist.(l') = infinity_dist then begin
                dist.(l') <- dist.(l) + 1;
                Queue.add l' queue
              end)
    done;
    !found
  in
  let found_depth = ref 0 in
  let rec try_augment l depth =
    let success = ref false in
    let arcs = adj.(l) in
    let i = ref 0 in
    while (not !success) && !i < Array.length arcs do
      let r = arcs.(!i) in
      let s = ref slot_start.(r) in
      while (not !success) && !s < slot_start.(r + 1) do
        let owner = match_slot.(!s) in
        if
          (if owner = -1 then begin
             found_depth := depth;
             true
           end
           else dist.(owner) = dist.(l) + 1 && try_augment owner (depth + 1))
        then begin
          match_slot.(!s) <- l;
          match_left.(l) <- !s;
          success := true
        end;
        incr s
      done;
      incr i
    done;
    if not !success then dist.(l) <- infinity_dist;
    !success
  in
  while bfs () do
    Vod_obs.Registry.incr obs_phases;
    for l = 0 to n_left - 1 do
      if match_left.(l) = -1 && try_augment l 0 then begin
        incr size;
        Vod_obs.Registry.incr obs_paths;
        Vod_obs.Registry.observe obs_path_len ((2 * !found_depth) + 1)
      end
    done
  done;
  let assignment = Array.map (fun s -> if s = -1 then -1 else slot_right.(s)) match_left in
  let right_load = Array.make n_right 0 in
  Array.iter (fun r -> if r >= 0 then right_load.(r) <- right_load.(r) + 1) assignment;
  { size = !size; assignment; right_load }

(* Thin shim over the CSR core: same signature and validation as the
   historical entry point, paying one instance + arena allocation. *)
let solve ?warm_start ~n_left ~n_right ~adj ~right_cap () =
  if Array.length adj <> n_left then invalid_arg "Hopcroft_karp.solve: adj length";
  if Array.length right_cap <> n_right then
    invalid_arg "Hopcroft_karp.solve: right_cap length";
  (match warm_start with
  | Some ws when Array.length ws <> n_left ->
      invalid_arg "Hopcroft_karp.solve: warm_start length"
  | _ -> ());
  Array.iter
    (fun c -> if c < 0 then invalid_arg "Hopcroft_karp.solve: negative cap")
    right_cap;
  Array.iter
    (Array.iter (fun r ->
         if r < 0 || r >= n_right then invalid_arg "Hopcroft_karp.solve: adj out of range"))
    adj;
  let csr = Csr.of_adjacency ~right_cap ~n_right adj in
  let arena = Arena.create () in
  let size = solve_csr ?warm_start ~arena csr in
  {
    size;
    assignment = Array.sub (Arena.assignment arena) 0 n_left;
    right_load = Array.sub (Arena.right_load arena) 0 n_right;
  }
