(* Scratch-buffer arena shared by the CSR solver cores.  See the mli
   for the slab discipline; the implementation is just named growable
   int-array cells. *)

type slab = { mutable buf : int array }
type bitslab = { mutable bits : Vod_util.Bitset.t }

type t = {
  assignment : slab;
  right_load : slab;
  queue : slab;
  warm : slab;
  hk_dist : slab;
  seat_start : slab;
  seats : slab;
  level : slab;
  it_left : slab;
  it_right : slab;
  matched_edge : slab;
  t_row_start : slab;
  t_eid : slab;
  t_packed : slab;
  edge_left : slab;
  excess : slab;
  height : slab;
  height_count : slab;
  edge_flow : slab;
  src_flow : slab;
  pr_it : slab;
  in_queue : slab;
  free_left : bitslab;
  free_right : bitslab;
  frontier : bitslab;
  visited_right : bitslab;
}

let slab () = { buf = [||] }
let bitslab () = { bits = Vod_util.Bitset.create 0 }

let create () =
  {
    assignment = slab ();
    right_load = slab ();
    queue = slab ();
    warm = slab ();
    hk_dist = slab ();
    seat_start = slab ();
    seats = slab ();
    level = slab ();
    it_left = slab ();
    it_right = slab ();
    matched_edge = slab ();
    t_row_start = slab ();
    t_eid = slab ();
    t_packed = slab ();
    edge_left = slab ();
    excess = slab ();
    height = slab ();
    height_count = slab ();
    edge_flow = slab ();
    src_flow = slab ();
    pr_it = slab ();
    in_queue = slab ();
    free_left = bitslab ();
    free_right = bitslab ();
    frontier = bitslab ();
    visited_right = bitslab ();
  }

let ints slab n =
  if Array.length slab.buf < n then begin
    let cap = ref 8 in
    while !cap < n do
      cap := 2 * !cap
    done;
    (* scratch: old contents are never carried over, so no blit *)
    slab.buf <- Array.make !cap 0
  end;
  slab.buf

(* Bitset slabs grow with the same power-of-two schedule as [ints], so
   two bitslabs always requested with the same [n] (the kernels request
   their right-side sets together) share a capacity and stay legal
   operands of the word-sweep operations, which insist on equality. *)
let bits bitslab n =
  if Vod_util.Bitset.capacity bitslab.bits < n then begin
    let cap = ref 8 in
    while !cap < n do
      cap := 2 * !cap
    done;
    bitslab.bits <- Vod_util.Bitset.create !cap
  end;
  bitslab.bits

let assignment t = t.assignment.buf
let right_load t = t.right_load.buf

let words t =
  let slabs =
    [
      t.assignment; t.right_load; t.queue; t.warm; t.hk_dist; t.seat_start; t.seats;
      t.level; t.it_left; t.it_right; t.matched_edge; t.t_row_start; t.t_eid;
      t.t_packed; t.edge_left; t.excess; t.height; t.height_count; t.edge_flow;
      t.src_flow; t.pr_it; t.in_queue;
    ]
  in
  let bitslabs = [ t.free_left; t.free_right; t.frontier; t.visited_right ] in
  List.fold_left (fun acc s -> acc + Array.length s.buf) 0 slabs
  + List.fold_left (fun acc b -> acc + Vod_util.Bitset.word_count b.bits) 0 bitslabs
