(** Mutable residual flow network with integer capacities.

    Arcs are stored in interleaved forward/backward pairs: arc [2i] is the
    forward arc of the [i]-th added edge and arc [2i+1] its residual
    reverse.  All max-flow algorithms in this library ({!Dinic},
    {!Push_relabel}) operate destructively on this structure; call
    {!reset_flow} to reuse a network. *)

type t

type arc = int
(** Arc identifier, as returned by {!add_edge}. *)

val infinite_capacity : int
(** A capacity treated as unbounded ([max_int/4], safe against summing). *)

val create : ?arc_hint:int -> int -> t
(** [create n] is an empty network on nodes [0..n-1].  [arc_hint]
    pre-sizes the arc store (in arc cells, i.e. twice the edge count)
    so that building a network of known shape performs no growth
    re-allocations.  @raise Invalid_argument on negative arguments. *)

val clear : t -> unit
(** Drop every arc, keeping the node set and the arc store's capacity —
    the reuse path for rebuilding a same-shaped network without
    re-allocation (see also {!reset_flow}, which keeps the topology). *)

val node_count : t -> int

val arc_count : t -> int
(** Number of arcs including reverse arcs (always even). *)

val add_edge : t -> src:int -> dst:int -> cap:int -> arc
(** Adds a directed edge and its zero-capacity reverse.  Returns the
    forward arc id.  @raise Invalid_argument on negative capacity or
    out-of-range endpoints. *)

val arc_src : t -> arc -> int
val arc_dst : t -> arc -> int

val capacity : t -> arc -> int
(** Original capacity of the arc (0 for reverse arcs). *)

val flow : t -> arc -> int
(** Current flow on a forward arc (negative on reverse arcs). *)

val residual : t -> arc -> int
(** Remaining capacity of the arc in the residual graph. *)

val push : t -> arc -> int -> unit
(** [push t a x] sends [x] additional units along [a] (internal use by
    the solvers; exposed for tests). *)

val reset_flow : t -> unit
(** Zero all flows, keeping the topology. *)

val iter_arcs_from : t -> int -> (arc -> unit) -> unit
(** Iterate over all arcs (forward and reverse) leaving a node. *)

val fold_out_flow : t -> int -> int
(** Net flow leaving a node (outgoing minus incoming on forward arcs). *)

val residual_reachable : t -> src:int -> Vod_util.Bitset.t
(** BFS over arcs with positive residual capacity; the source side of a
    minimum cut once a maximum flow has been computed. *)

val check_conservation : t -> src:int -> sink:int -> bool
(** Flow conservation at every node except [src] and [sink], and
    per-arc capacity constraints.  Used by tests and cross-validation. *)
