open Vod_util

type arc = int

type t = {
  n : int;
  first : int array; (* head of the arc list of each node, -1 if none *)
  next : int Vec.t; (* arc -> next arc of the same source *)
  dst : int Vec.t;
  src : int Vec.t;
  cap : int Vec.t; (* remaining (residual) capacity per arc *)
  original_cap : int Vec.t;
}

let infinite_capacity = max_int / 4

let create ?(arc_hint = 0) n =
  if n < 0 then invalid_arg "Flow_network.create: negative node count";
  if arc_hint < 0 then invalid_arg "Flow_network.create: negative arc hint";
  let sized () =
    let v = Vec.create () in
    Vec.ensure_capacity v arc_hint 0;
    v
  in
  {
    n;
    first = Array.make (max n 1) (-1);
    next = sized ();
    dst = sized ();
    src = sized ();
    cap = sized ();
    original_cap = sized ();
  }

let clear t =
  Array.fill t.first 0 (Array.length t.first) (-1);
  Vec.clear t.next;
  Vec.clear t.dst;
  Vec.clear t.src;
  Vec.clear t.cap;
  Vec.clear t.original_cap

let node_count t = t.n
let arc_count t = Vec.length t.dst

let add_arc t ~src ~dst ~cap =
  let a = Vec.length t.dst in
  Vec.push t.dst dst;
  Vec.push t.src src;
  Vec.push t.cap cap;
  Vec.push t.original_cap cap;
  Vec.push t.next t.first.(src);
  t.first.(src) <- a;
  a

let add_edge t ~src ~dst ~cap =
  if cap < 0 then invalid_arg "Flow_network.add_edge: negative capacity";
  if src < 0 || src >= t.n || dst < 0 || dst >= t.n then
    invalid_arg "Flow_network.add_edge: endpoint out of range";
  let a = add_arc t ~src ~dst ~cap in
  let (_ : int) = add_arc t ~src:dst ~dst:src ~cap:0 in
  a

let arc_src t a = Vec.get t.src a
let arc_dst t a = Vec.get t.dst a
let capacity t a = Vec.get t.original_cap a
let residual t a = Vec.get t.cap a
let flow t a = capacity t a - residual t a

let push t a x =
  Vec.set t.cap a (Vec.get t.cap a - x);
  Vec.set t.cap (a lxor 1) (Vec.get t.cap (a lxor 1) + x)

let reset_flow t =
  for a = 0 to arc_count t - 1 do
    Vec.set t.cap a (Vec.get t.original_cap a)
  done

let iter_arcs_from t v f =
  let a = ref t.first.(v) in
  while !a >= 0 do
    f !a;
    a := Vec.get t.next !a
  done

let fold_out_flow t v =
  let acc = ref 0 in
  iter_arcs_from t v (fun a -> if a land 1 = 0 then acc := !acc + flow t a);
  (* incoming forward arcs show up as flow on our reverse arcs *)
  iter_arcs_from t v (fun a -> if a land 1 = 1 then acc := !acc + flow t a);
  !acc

let residual_reachable t ~src =
  let seen = Bitset.create t.n in
  (* flat array queue: each vertex enters at most once, so [t.n] cells
     bound the frontier — no boxed Queue cells on this hot audit path *)
  let queue = Array.make (max t.n 1) 0 in
  let head = ref 0 and tail = ref 0 in
  Bitset.add seen src;
  queue.(!tail) <- src;
  incr tail;
  while !head < !tail do
    let v = queue.(!head) in
    incr head;
    iter_arcs_from t v (fun a ->
        let w = arc_dst t a in
        if residual t a > 0 && not (Bitset.unsafe_mem seen w) then begin
          Bitset.unsafe_add seen w;
          queue.(!tail) <- w;
          incr tail
        end)
  done;
  seen

let check_conservation t ~src ~sink =
  let ok = ref true in
  for a = 0 to arc_count t - 1 do
    if a land 1 = 0 then begin
      let f = flow t a in
      if f < 0 || f > capacity t a then ok := false
    end
  done;
  for v = 0 to t.n - 1 do
    if v <> src && v <> sink && fold_out_flow t v <> 0 then ok := false
  done;
  !ok
