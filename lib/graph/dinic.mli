(** Dinic's maximum-flow algorithm: BFS level graph + blocking flows with
    the current-arc optimisation.  On the unit-capacity bipartite networks
    produced by connection matching this runs in O(E sqrt(V)), matching
    Hopcroft–Karp. *)

val max_flow : ?limit:int -> Flow_network.t -> src:int -> sink:int -> int
(** Computes a maximum flow destructively on the network and returns its
    value.  [limit] caps the amount of flow pushed (default unbounded) —
    useful for early-exit feasibility checks.
    @raise Invalid_argument if [src = sink] or either is out of range. *)

val solve_csr : ?warm_start:int array -> arena:Arena.t -> Csr.t -> int
(** Dinic specialised to the implicit bipartite matching network
    (src -> lefts cap 1 -> rights via the CSR edges cap 1 -> sink with
    cap [right_cap]); no [Flow_network] is materialised.  Returns the
    flow value (= matching size); the assignment and per-right loads are
    left in [Arena.assignment] / [Arena.right_load] (borrowed, valid
    until the arena's next solve).  All scratch lives in the arena, so
    steady-state calls allocate nothing.  [warm_start] (length at least
    [n_left], entries a right vertex or -1; extra cells ignored)
    pre-pushes each left's unit onto its previous right when still
    adjacent and under capacity — this replaces the flow pre-push of
    the old warm Dinic path.
    @raise Invalid_argument when [warm_start] is shorter than
    [n_left]. *)
