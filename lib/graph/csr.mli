(** Flat compressed-sparse-row bipartite instance.

    A [Csr.t] is the cache-friendly wire format shared by all matching /
    max-flow solvers: the edges of left vertex [l] live in
    [col.(row_start.(l)) .. col.(row_start.(l + 1) - 1)], with the
    per-right capacities in a flat [right_cap] array.  Two [int array]s
    replace the [int array array] adjacency rows the solvers used to
    traverse, eliminating a pointer chase and a per-row allocation.

    The value doubles as its own builder: [reset] rewinds it to an empty
    instance of a (possibly different) shape while keeping every backing
    buffer, [add_edge] appends pending edges in arbitrary order, and
    [finalize] compacts them into row-major CSR form — deduplicating
    repeated (left, right) pairs — via a counting sort that allocates
    nothing once the buffers have grown to the high-water mark.  The
    engine rebuilds its round instance through exactly this path, so the
    steady state of a simulation run performs zero allocation here.

    Buffers returned by [row_start], [col] and [right_cap_array] are
    borrowed: they remain owned by the instance, are invalidated by the
    next [reset]/[finalize], and may be longer than the logical size —
    only the prefixes documented below are meaningful. *)

type t

val create : unit -> t
(** An empty 0x0 instance (finalized). *)

val reset : t -> n_left:int -> n_right:int -> unit
(** Rewind to an empty [n_left] x [n_right] instance with all right
    capacities 0, retaining backing buffers.
    @raise Invalid_argument on negative dimensions. *)

val set_right_cap : t -> int -> int -> unit
(** [set_right_cap t r c] sets the capacity of right vertex [r].
    @raise Invalid_argument if [r] is out of range or [c < 0]. *)

val add_edge : t -> left:int -> right:int -> unit
(** Append a pending edge; duplicates are collapsed by [finalize].
    @raise Invalid_argument on out-of-range endpoints. *)

val finalize : t -> unit
(** Compact pending edges into CSR form: a two-pass stable counting
    sort (by column, then by row) yielding sorted rows, followed by an
    adjacent-duplicate compaction.  O(edges + n_left + n_right), and
    allocation-free once the buffers have grown.  Idempotent; implied
    by the accessors below, so calling it explicitly is only useful for
    timing. *)

val rebuild_rows :
  t -> n_left:int -> src_of:(int -> int) -> fill:(int -> (int -> unit) -> unit) -> unit
(** Delta rebuild of the finalized row view for the next round, reusing
    rows unchanged since the last one.  [src_of l] names the current
    row whose edge set new row [l] copies verbatim (a clean row), or
    [-1] for a dirty row whose neighbours are re-emitted by
    [fill l emit] (in any order, duplicates allowed — the row is sorted
    and deduplicated in place afterwards, so it lands in the same
    normal form as [finalize]).  Cost is O(dirty edges + n_left) plus a
    [blit] of the clean bytes — per-round work proportional to churn,
    not to instance size.  The number of rights and the capacity array
    are untouched; set capacities separately.  Afterwards the instance
    is {e frozen}: the pending-edge list no longer mirrors the row
    view, so [add_edge] raises until the next [reset].
    @raise Invalid_argument if [src_of] names an out-of-range row or
    [fill] emits an out-of-range right. *)

val n_left : t -> int
val n_right : t -> int

val n_edges : t -> int
(** Number of distinct edges (finalizes first). *)

val row_start : t -> int array
(** Borrowed; entries [0 .. n_left] are meaningful (finalizes first). *)

val col : t -> int array
(** Borrowed; entries [0 .. n_edges - 1] are meaningful (finalizes
    first).  Within a row, columns are in ascending order — the same
    normal form as the sorted adjacency view, so the CSR and legacy
    solvers break ties between maximum matchings identically. *)

val right_cap_array : t -> int array
(** Borrowed; entries [0 .. n_right - 1] are meaningful. *)

val packed_shift : int
val packed_mask : int

val packed_edges : t -> int array
(** Borrowed packed edge list: entry [i] is
    [(left lsl 31) lor col.(i)], aligned with [col] (finalizes first).
    One flat sweep replaces the nested row loop in whole-edge passes
    (union-find labelling, layout analysis), halving the loads.
    Rebuilt lazily whenever the row view changes.
    @raise Invalid_argument if a dimension exceeds [2^31 - 1]. *)

val right_cap : t -> int -> int
val degree : t -> int -> int
(** Distinct-neighbour degree of a left vertex (finalizes first). *)

val mem : t -> left:int -> right:int -> bool
(** Linear scan of [left]'s row (finalizes first). *)

val iter_row : t -> int -> (int -> unit) -> unit
(** [iter_row t l f] applies [f] to each distinct neighbour of [l]. *)

val total_cap : t -> int
(** Sum of right capacities. *)

val load_permuted :
  t -> t -> left_old:int array -> right_old:int array -> right_new:int array -> unit
(** [load_permuted dst src ~left_old ~right_old ~right_new] rebuilds
    [dst] as [src] with vertices renumbered: new left [l'] is old left
    [left_old.(l')], new right [r'] is old right [right_old.(r')], and
    [right_new] is the inverse of [right_old].  Emitted directly in
    finalized form (no counting sort): requires the renumbering to be
    order-preserving on each row's neighbour set — true for any
    per-component order-preserving permutation, since a row's
    neighbours all share its component — so source rows map to sorted
    rows.  [dst] comes out frozen ([add_edge] raises until [reset]).
    O(edges + n_left + n_right), allocation-free at the high-water
    mark.
    @raise Invalid_argument if a table is too short or the renumbering
    breaks row order. *)

val of_adjacency : ?right_cap:int array -> n_right:int -> int array array -> t
(** Fresh instance from adjacency rows (duplicates allowed); rights all
    have capacity 1 unless [right_cap] is given. *)

val load_adjacency : t -> ?right_cap:int array -> n_right:int -> int array array -> unit
(** [of_adjacency] into an existing instance, reusing its buffers. *)

val to_adjacency : t -> int array array
(** Fresh sorted, deduplicated adjacency rows (allocates; for tests,
    certificates and the legacy solver paths). *)
