open Vod_util
module F = Flow_network

type t = {
  n_left : int;
  n_right : int;
  right_cap : int array;
  adj : int Vec.t array; (* left -> rights, possibly with duplicates *)
  mutable dedup : int array array option; (* memoised deduplicated adjacency *)
}

let create ~n_left ~n_right ~right_cap =
  if n_left < 0 || n_right < 0 then invalid_arg "Bipartite.create: negative size";
  if Array.length right_cap <> n_right then
    invalid_arg "Bipartite.create: right_cap length mismatch";
  Array.iter (fun c -> if c < 0 then invalid_arg "Bipartite.create: negative capacity") right_cap;
  {
    n_left;
    n_right;
    right_cap = Array.copy right_cap;
    adj = Array.init (max n_left 1) (fun _ -> Vec.create ());
    dedup = None;
  }

let add_edge t ~left ~right =
  if left < 0 || left >= t.n_left then invalid_arg "Bipartite.add_edge: left out of range";
  if right < 0 || right >= t.n_right then invalid_arg "Bipartite.add_edge: right out of range";
  Vec.push t.adj.(left) right;
  t.dedup <- None

let n_left t = t.n_left
let n_right t = t.n_right
let right_cap t = Array.copy t.right_cap

let adjacency t =
  match t.dedup with
  | Some a -> a
  | None ->
      let a =
        Array.init t.n_left (fun l ->
            let rights = Vec.to_array t.adj.(l) in
            Array.sort compare rights;
            let out = Vec.create () in
            Array.iteri
              (fun i r -> if i = 0 || rights.(i - 1) <> r then Vec.push out r)
              rights;
            Vec.to_array out)
      in
      t.dedup <- Some a;
      a

let degree t l = Array.length (adjacency t).(l)

type algorithm = Dinic_flow | Push_relabel_flow | Hopcroft_karp_matching

type outcome = { matched : int; assignment : int array; right_load : int array }

(* Flow-network encoding of Lemma 1: source -> request (cap 1),
   request -> box (unbounded), box -> sink (cap = upload slots). *)
let build_network_full t =
  let src = 0 in
  let left_base = 1 in
  let right_base = 1 + t.n_left in
  let sink = 1 + t.n_left + t.n_right in
  let net = F.create (sink + 1) in
  let adj = adjacency t in
  let src_arcs = Array.make (max t.n_left 1) 0 in
  for l = 0 to t.n_left - 1 do
    src_arcs.(l) <- F.add_edge net ~src ~dst:(left_base + l) ~cap:1
  done;
  let middle = Array.make (max t.n_left 1) [||] in
  for l = 0 to t.n_left - 1 do
    middle.(l) <-
      Array.map
        (fun r -> F.add_edge net ~src:(left_base + l) ~dst:(right_base + r) ~cap:1)
        adj.(l)
  done;
  let sink_arcs = Array.make (max t.n_right 1) 0 in
  for r = 0 to t.n_right - 1 do
    sink_arcs.(r) <- F.add_edge net ~src:(right_base + r) ~dst:sink ~cap:t.right_cap.(r)
  done;
  (net, src, sink, middle, src_arcs, sink_arcs)

let build_network t =
  let net, src, sink, middle, _, _ = build_network_full t in
  (net, src, sink, middle)

let outcome_of_flow t net middle =
  let adj = adjacency t in
  let assignment = Array.make t.n_left (-1) in
  let right_load = Array.make t.n_right 0 in
  let matched = ref 0 in
  for l = 0 to t.n_left - 1 do
    Array.iteri
      (fun i a ->
        if F.flow net a > 0 then begin
          let r = adj.(l).(i) in
          assignment.(l) <- r;
          right_load.(r) <- right_load.(r) + 1;
          incr matched
        end)
      middle.(l)
  done;
  { matched = !matched; assignment; right_load }

let solve ?(algorithm = Dinic_flow) t =
  match algorithm with
  | Dinic_flow ->
      let net, src, sink, middle = build_network t in
      let (_ : int) = Dinic.max_flow net ~src ~sink in
      outcome_of_flow t net middle
  | Push_relabel_flow ->
      let net, src, sink, middle = build_network t in
      let (_ : int) = Push_relabel.max_flow net ~src ~sink in
      outcome_of_flow t net middle
  | Hopcroft_karp_matching ->
      let r =
        Hopcroft_karp.solve ~n_left:t.n_left ~n_right:t.n_right ~adj:(adjacency t)
          ~right_cap:t.right_cap ()
      in
      { matched = r.Hopcroft_karp.size; assignment = r.assignment; right_load = r.right_load }

let solve_min_cost t ~edge_cost =
  let src = 0 in
  let left_base = 1 in
  let right_base = 1 + t.n_left in
  let sink = 1 + t.n_left + t.n_right in
  let net = Min_cost_flow.create (sink + 1) in
  let adj = adjacency t in
  for l = 0 to t.n_left - 1 do
    ignore (Min_cost_flow.add_edge net ~src ~dst:(left_base + l) ~cap:1 ~cost:0)
  done;
  let middle = Array.make (max t.n_left 1) [||] in
  for l = 0 to t.n_left - 1 do
    middle.(l) <-
      Array.map
        (fun r ->
          Min_cost_flow.add_edge net ~src:(left_base + l) ~dst:(right_base + r) ~cap:1
            ~cost:(edge_cost ~left:l ~right:r))
        adj.(l)
  done;
  for r = 0 to t.n_right - 1 do
    ignore
      (Min_cost_flow.add_edge net ~src:(right_base + r) ~dst:sink ~cap:t.right_cap.(r)
         ~cost:0)
  done;
  let _value, _cost = Min_cost_flow.solve net ~src ~sink in
  let assignment = Array.make t.n_left (-1) in
  let right_load = Array.make t.n_right 0 in
  let matched = ref 0 in
  for l = 0 to t.n_left - 1 do
    Array.iteri
      (fun i a ->
        if Min_cost_flow.flow net a > 0 then begin
          let r = adj.(l).(i) in
          assignment.(l) <- r;
          right_load.(r) <- right_load.(r) + 1;
          incr matched
        end)
      middle.(l)
  done;
  { matched = !matched; assignment; right_load }

let solve_greedy ?(until_stable = false) ?warm_start ~rounds g t =
  let adj = adjacency t in
  let assignment = Array.make t.n_left (-1) in
  let right_load = Array.make t.n_right 0 in
  let matched = ref 0 in
  (* persistent connections: re-seat requests on their previous server
     when it is still adjacent and has capacity *)
  (match warm_start with
  | None -> ()
  | Some ws ->
      if Array.length ws <> t.n_left then
        invalid_arg "Bipartite.solve_greedy: warm_start length mismatch";
      Array.iteri
        (fun l r ->
          if
            r >= 0 && r < t.n_right
            && right_load.(r) < t.right_cap.(r)
            && Array.mem r adj.(l)
          then begin
            assignment.(l) <- r;
            right_load.(r) <- right_load.(r) + 1;
            incr matched
          end)
        ws);
  let progress = ref true in
  let round = ref 0 in
  while (if until_stable then !progress else !round < rounds) && !matched < t.n_left do
    incr round;
    if until_stable && !round > rounds * 1000 then progress := false
    else begin
      progress := false;
      (* 1. proposals: every unmatched request picks one candidate with
         spare capacity, uniformly at random *)
      let proposals = Array.init (max t.n_right 1) (fun _ -> Vec.create ()) in
      for l = 0 to t.n_left - 1 do
        if assignment.(l) = -1 then begin
          let open_candidates =
            Array.to_list adj.(l)
            |> List.filter (fun r -> right_load.(r) < t.right_cap.(r))
          in
          match open_candidates with
          | [] -> ()
          | candidates ->
              let arr = Array.of_list candidates in
              Vec.push proposals.(arr.(Vod_util.Prng.int g (Array.length arr))) l
        end
      done;
      (* 2. acceptance: each box takes a random subset up to capacity *)
      for r = 0 to t.n_right - 1 do
        let incoming = Vec.to_array proposals.(r) in
        if Array.length incoming > 0 then begin
          Vod_util.Sample.shuffle g incoming;
          let accept = min (Array.length incoming) (t.right_cap.(r) - right_load.(r)) in
          for i = 0 to accept - 1 do
            assignment.(incoming.(i)) <- r;
            right_load.(r) <- right_load.(r) + 1;
            incr matched;
            progress := true
          done
        end
      done
    end
  done;
  { matched = !matched; assignment; right_load }

let is_feasible ?(algorithm = Dinic_flow) t =
  let o = solve ~algorithm t in
  o.matched = t.n_left

type violator = { requests : int list; servers : int list; server_slots : int }

let hall_violator t =
  let net, src, sink, _middle = build_network t in
  let value = Dinic.max_flow net ~src ~sink in
  if value = t.n_left then None
  else begin
    (* Source side S of the min cut.  X = requests in S; because
       request->box arcs carry flow at most 1 but have capacity 1 — we
       need them uncuttable, so recompute reachability treating middle
       arcs as uncut: a middle arc from a reachable request is only
       saturated if the request is matched, and then the box is reached
       through the reverse arc of the box->sink path...  To keep the
       certificate exact we rebuild the network with unbounded middle
       arcs. *)
    let adj = adjacency t in
    let left_base = 1 in
    let right_base = 1 + t.n_left in
    let sink' = 1 + t.n_left + t.n_right in
    let net' = F.create (sink' + 1) in
    for l = 0 to t.n_left - 1 do
      ignore (F.add_edge net' ~src:0 ~dst:(left_base + l) ~cap:1)
    done;
    for l = 0 to t.n_left - 1 do
      Array.iter
        (fun r ->
          ignore
            (F.add_edge net' ~src:(left_base + l) ~dst:(right_base + r)
               ~cap:F.infinite_capacity))
        adj.(l)
    done;
    for r = 0 to t.n_right - 1 do
      ignore (F.add_edge net' ~src:(right_base + r) ~dst:sink' ~cap:t.right_cap.(r))
    done;
    let value' = Dinic.max_flow net' ~src:0 ~sink:sink' in
    assert (value' = value);
    let reachable = F.residual_reachable net' ~src:0 in
    let requests = ref [] and servers = ref [] and slots = ref 0 in
    for l = t.n_left - 1 downto 0 do
      if Bitset.mem reachable (left_base + l) then requests := l :: !requests
    done;
    for r = t.n_right - 1 downto 0 do
      if Bitset.mem reachable (right_base + r) then begin
        servers := r :: !servers;
        slots := !slots + t.right_cap.(r)
      end
    done;
    Some { requests = !requests; servers = !servers; server_slots = !slots }
  end

(* ------------------------------------------------------------------ *)
(* Warm-start incremental solving                                      *)
(* ------------------------------------------------------------------ *)

module Incremental = struct
  (* Observability hooks (registered once; O(1) per event recorded). *)
  let obs_reseated =
    Vod_obs.Registry.counter Vod_obs.Registry.default "matching.seats_revalidated"
  let obs_dirty = Vod_obs.Registry.counter Vod_obs.Registry.default "matching.dirty"
  let obs_fallbacks =
    Vod_obs.Registry.counter Vod_obs.Registry.default "matching.fallbacks"
  let obs_repairs =
    Vod_obs.Registry.counter Vod_obs.Registry.default "matching.incremental_solves"
  let obs_repaired = Vod_obs.Registry.counter Vod_obs.Registry.default "matching.repaired"

  type stats = {
    rounds : int;
    full_solves : int;
    incremental_solves : int;
    reseated : int;
    repaired : int;
  }

  type state = {
    algorithm : algorithm;
    fallback_threshold : float;
    mutable s_rounds : int;
    mutable s_full : int;
    mutable s_incremental : int;
    mutable s_reseated : int;
    mutable s_repaired : int;
  }

  let create ?(algorithm = Hopcroft_karp_matching) ?(fallback_threshold = 0.5) () =
    (match algorithm with
    | Hopcroft_karp_matching | Dinic_flow -> ()
    | Push_relabel_flow ->
        invalid_arg "Bipartite.Incremental.create: push-relabel has no warm-start path");
    if not (fallback_threshold >= 0.0 && fallback_threshold <= 1.0) then
      invalid_arg "Bipartite.Incremental.create: threshold outside [0, 1]";
    {
      algorithm;
      fallback_threshold;
      s_rounds = 0;
      s_full = 0;
      s_incremental = 0;
      s_reseated = 0;
      s_repaired = 0;
    }

  let stats st =
    {
      rounds = st.s_rounds;
      full_solves = st.s_full;
      incremental_solves = st.s_incremental;
      reseated = st.s_reseated;
      repaired = st.s_repaired;
    }

  (* Validate the caller's warm seats against the *current* instance:
     the previous server must still be adjacent (departures, cache
     expiry) and still within its possibly-shrunk capacity (churn,
     relay reservation changes).  Returns the cleaned seating and how
     many seats survived. *)
  let validate_seats t warm =
    let cleaned = Array.make t.n_left (-1) in
    let load = Array.make (max t.n_right 1) 0 in
    let seated = ref 0 in
    let adj = adjacency t in
    Array.iteri
      (fun l r ->
        if r >= 0 && r < t.n_right && load.(r) < t.right_cap.(r) && Array.mem r adj.(l)
        then begin
          cleaned.(l) <- r;
          load.(r) <- load.(r) + 1;
          incr seated
        end)
      warm;
    (cleaned, !seated)

  (* Dinic with a warm start: pre-push one unit along every validated
     seat's source -> request -> box -> sink path, then run Dinic on the
     residual network; it only has to find the augmenting paths the
     delta disturbed. *)
  let solve_dinic_warm t cleaned =
    let net, src, sink, middle, src_arcs, sink_arcs = build_network_full t in
    let adj = adjacency t in
    Array.iteri
      (fun l r ->
        if r >= 0 then begin
          let i = ref 0 in
          while adj.(l).(!i) <> r do
            incr i
          done;
          F.push net src_arcs.(l) 1;
          F.push net middle.(l).(!i) 1;
          F.push net sink_arcs.(r) 1
        end)
      cleaned;
    let (_ : int) = Dinic.max_flow net ~src ~sink in
    outcome_of_flow t net middle

  let solve st ?warm_start t =
    st.s_rounds <- st.s_rounds + 1;
    (match warm_start with
    | Some ws when Array.length ws <> t.n_left ->
        invalid_arg "Bipartite.Incremental.solve: warm_start length mismatch"
    | _ -> ());
    let cleaned, seated =
      Vod_obs.Span.with_ ~name:"revalidate" (fun () ->
          match warm_start with
          | None -> (Array.make t.n_left (-1), 0)
          | Some ws -> validate_seats t ws)
    in
    st.s_reseated <- st.s_reseated + seated;
    Vod_obs.Registry.add obs_reseated seated;
    let dirty = t.n_left - seated in
    Vod_obs.Registry.add obs_dirty dirty;
    if t.n_left > 0 && float_of_int dirty > st.fallback_threshold *. float_of_int t.n_left
    then begin
      st.s_full <- st.s_full + 1;
      Vod_obs.Registry.incr obs_fallbacks;
      Vod_obs.Span.with_ ~name:"fallback" (fun () -> solve ~algorithm:st.algorithm t)
    end
    else begin
      st.s_incremental <- st.s_incremental + 1;
      Vod_obs.Registry.incr obs_repairs;
      let outcome =
        Vod_obs.Span.with_ ~name:"repair" (fun () ->
            match st.algorithm with
            | Hopcroft_karp_matching ->
                let r =
                  Hopcroft_karp.solve ~warm_start:cleaned ~n_left:t.n_left
                    ~n_right:t.n_right ~adj:(adjacency t) ~right_cap:t.right_cap ()
                in
                {
                  matched = r.Hopcroft_karp.size;
                  assignment = r.assignment;
                  right_load = r.right_load;
                }
            | Dinic_flow -> solve_dinic_warm t cleaned
            | Push_relabel_flow -> assert false)
      in
      st.s_repaired <- st.s_repaired + (outcome.matched - seated);
      Vod_obs.Registry.add obs_repaired (outcome.matched - seated);
      outcome
    end
end

let solve_incremental st ?warm_start t = Incremental.solve st ?warm_start t
