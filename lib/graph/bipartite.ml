open Vod_util
module F = Flow_network

(* The instance is CSR-backed: [Csr.t] holds the edges (insertion order,
   deduplicated on finalize) and the per-right capacities, and doubles
   as the reusable builder the engine refills every round via [reset].
   [dedup] memoises the sorted [int array array] view still consumed by
   the legacy solver paths, certificates and min-cost/greedy solvers. *)
type t = {
  csr : Csr.t;
  mutable dedup : int array array option; (* memoised sorted adjacency rows *)
  mutable layout : Layout.t option; (* lazily created renumbering pass *)
}

let validate_shape ~who ~n_left ~n_right ~right_cap =
  if n_left < 0 || n_right < 0 then invalid_arg (who ^ ": negative size");
  if Array.length right_cap <> n_right then
    invalid_arg (who ^ ": right_cap length mismatch");
  Array.iter (fun c -> if c < 0 then invalid_arg (who ^ ": negative capacity")) right_cap

let create ~n_left ~n_right ~right_cap =
  validate_shape ~who:"Bipartite.create" ~n_left ~n_right ~right_cap;
  let csr = Csr.create () in
  Csr.reset csr ~n_left ~n_right;
  Array.iteri (fun r c -> Csr.set_right_cap csr r c) right_cap;
  { csr; dedup = None; layout = None }

let reset t ~n_left ~n_right ~right_cap =
  validate_shape ~who:"Bipartite.reset" ~n_left ~n_right ~right_cap;
  Csr.reset t.csr ~n_left ~n_right;
  Array.iteri (fun r c -> Csr.set_right_cap t.csr r c) right_cap;
  t.dedup <- None

let delta_rebuild t ~n_left ~right_cap ~src_of ~fill =
  let n_right = Csr.n_right t.csr in
  validate_shape ~who:"Bipartite.delta_rebuild" ~n_left ~n_right ~right_cap;
  Array.iteri (fun r c -> Csr.set_right_cap t.csr r c) right_cap;
  Csr.rebuild_rows t.csr ~n_left ~src_of ~fill;
  t.dedup <- None

let add_edge t ~left ~right =
  if left < 0 || left >= Csr.n_left t.csr then
    invalid_arg "Bipartite.add_edge: left out of range";
  if right < 0 || right >= Csr.n_right t.csr then
    invalid_arg "Bipartite.add_edge: right out of range";
  Csr.add_edge t.csr ~left ~right;
  t.dedup <- None

let n_left t = Csr.n_left t.csr
let n_right t = Csr.n_right t.csr
let right_cap t = Array.sub (Csr.right_cap_array t.csr) 0 (Csr.n_right t.csr)

let csr t =
  Csr.finalize t.csr;
  t.csr

let adjacency t =
  match t.dedup with
  | Some a -> a
  | None ->
      let a = Csr.to_adjacency t.csr in
      t.dedup <- Some a;
      a

let degree t l = Csr.degree t.csr l

type algorithm = Dinic_flow | Push_relabel_flow | Hopcroft_karp_matching

type outcome = { matched : int; assignment : int array; right_load : int array }

let outcome_of_arena t arena size =
  {
    matched = size;
    assignment = Array.sub (Arena.assignment arena) 0 (n_left t);
    right_load = Array.sub (Arena.right_load arena) 0 (n_right t);
  }

let layout_of t =
  match t.layout with
  | Some lay -> lay
  | None ->
      let lay = Layout.create () in
      t.layout <- Some lay;
      lay

let solve ?arena ?(algorithm = Dinic_flow) ?(layout = false) t =
  let arena = match arena with Some a -> a | None -> Arena.create () in
  let csr = csr t in
  let lay = if layout then Some (layout_of t) else None in
  let csr = match lay with Some l -> Layout.prepare l csr | None -> csr in
  let size =
    match algorithm with
    | Dinic_flow -> Dinic.solve_csr ~arena csr
    | Push_relabel_flow -> Push_relabel.solve_csr ~arena csr
    | Hopcroft_karp_matching -> Hopcroft_karp.solve_csr ~arena csr
  in
  (match lay with Some l -> Layout.commit l arena | None -> ());
  outcome_of_arena t arena size

(* ------------------------------------------------------------------ *)
(* Legacy adj-array solver paths                                       *)
(*                                                                     *)
(* The historical implementations — an explicit [Flow_network] for the *)
(* flow algorithms and slot expansion for Hopcroft-Karp — are kept as  *)
(* independent algorithms so the vod_check oracle panel and the fuzz   *)
(* harness can diff the CSR/arena cores against them on every          *)
(* instance.                                                           *)
(* ------------------------------------------------------------------ *)

(* Flow-network encoding of Lemma 1: source -> request (cap 1),
   request -> box (unbounded), box -> sink (cap = upload slots). *)
let build_network_full t =
  let src = 0 in
  let left_base = 1 in
  let right_base = 1 + n_left t in
  let sink = 1 + n_left t + n_right t in
  let right_cap = Csr.right_cap_array t.csr in
  let adj = adjacency t in
  let arc_hint =
    (* src arcs + middle arcs + sink arcs, two arc cells each *)
    2 * (n_left t + Csr.n_edges t.csr + n_right t)
  in
  let net = F.create ~arc_hint (sink + 1) in
  let src_arcs = Array.make (max (n_left t) 1) 0 in
  for l = 0 to n_left t - 1 do
    src_arcs.(l) <- F.add_edge net ~src ~dst:(left_base + l) ~cap:1
  done;
  let middle = Array.make (max (n_left t) 1) [||] in
  for l = 0 to n_left t - 1 do
    middle.(l) <-
      Array.map
        (fun r -> F.add_edge net ~src:(left_base + l) ~dst:(right_base + r) ~cap:1)
        adj.(l)
  done;
  let sink_arcs = Array.make (max (n_right t) 1) 0 in
  for r = 0 to n_right t - 1 do
    sink_arcs.(r) <- F.add_edge net ~src:(right_base + r) ~dst:sink ~cap:right_cap.(r)
  done;
  (net, src, sink, middle, src_arcs, sink_arcs)

let build_network t =
  let net, src, sink, middle, _, _ = build_network_full t in
  (net, src, sink, middle)

let outcome_of_flow t net middle =
  let adj = adjacency t in
  let assignment = Array.make (n_left t) (-1) in
  let right_load = Array.make (n_right t) 0 in
  let matched = ref 0 in
  for l = 0 to n_left t - 1 do
    Array.iteri
      (fun i a ->
        if F.flow net a > 0 then begin
          let r = adj.(l).(i) in
          assignment.(l) <- r;
          right_load.(r) <- right_load.(r) + 1;
          incr matched
        end)
      middle.(l)
  done;
  { matched = !matched; assignment; right_load }

let solve_legacy ?(algorithm = Dinic_flow) t =
  match algorithm with
  | Dinic_flow ->
      let net, src, sink, middle = build_network t in
      let (_ : int) = Dinic.max_flow net ~src ~sink in
      outcome_of_flow t net middle
  | Push_relabel_flow ->
      let net, src, sink, middle = build_network t in
      let (_ : int) = Push_relabel.max_flow net ~src ~sink in
      outcome_of_flow t net middle
  | Hopcroft_karp_matching ->
      let r =
        Hopcroft_karp.solve_slots ~n_left:(n_left t) ~n_right:(n_right t)
          ~adj:(adjacency t)
          ~right_cap:(Csr.right_cap_array t.csr |> fun a -> Array.sub a 0 (n_right t))
          ()
      in
      { matched = r.Hopcroft_karp.size; assignment = r.assignment; right_load = r.right_load }

let solve_min_cost t ~edge_cost =
  let src = 0 in
  let left_base = 1 in
  let right_base = 1 + n_left t in
  let sink = 1 + n_left t + n_right t in
  let right_cap = Csr.right_cap_array t.csr in
  let net = Min_cost_flow.create (sink + 1) in
  let adj = adjacency t in
  for l = 0 to n_left t - 1 do
    ignore (Min_cost_flow.add_edge net ~src ~dst:(left_base + l) ~cap:1 ~cost:0)
  done;
  let middle = Array.make (max (n_left t) 1) [||] in
  for l = 0 to n_left t - 1 do
    middle.(l) <-
      Array.map
        (fun r ->
          Min_cost_flow.add_edge net ~src:(left_base + l) ~dst:(right_base + r) ~cap:1
            ~cost:(edge_cost ~left:l ~right:r))
        adj.(l)
  done;
  for r = 0 to n_right t - 1 do
    ignore
      (Min_cost_flow.add_edge net ~src:(right_base + r) ~dst:sink ~cap:right_cap.(r)
         ~cost:0)
  done;
  let _value, _cost = Min_cost_flow.solve net ~src ~sink in
  let assignment = Array.make (n_left t) (-1) in
  let right_load = Array.make (n_right t) 0 in
  let matched = ref 0 in
  for l = 0 to n_left t - 1 do
    Array.iteri
      (fun i a ->
        if Min_cost_flow.flow net a > 0 then begin
          let r = adj.(l).(i) in
          assignment.(l) <- r;
          right_load.(r) <- right_load.(r) + 1;
          incr matched
        end)
      middle.(l)
  done;
  { matched = !matched; assignment; right_load }

let solve_greedy ?(until_stable = false) ?warm_start ~rounds g t =
  let adj = adjacency t in
  let right_cap = Csr.right_cap_array t.csr in
  let assignment = Array.make (n_left t) (-1) in
  let right_load = Array.make (n_right t) 0 in
  let matched = ref 0 in
  (* persistent connections: re-seat requests on their previous server
     when it is still adjacent and has capacity *)
  (match warm_start with
  | None -> ()
  | Some ws ->
      if Array.length ws <> n_left t then
        invalid_arg "Bipartite.solve_greedy: warm_start length mismatch";
      Array.iteri
        (fun l r ->
          if
            r >= 0 && r < n_right t
            && right_load.(r) < right_cap.(r)
            && Array.mem r adj.(l)
          then begin
            assignment.(l) <- r;
            right_load.(r) <- right_load.(r) + 1;
            incr matched
          end)
        ws);
  let progress = ref true in
  let round = ref 0 in
  while (if until_stable then !progress else !round < rounds) && !matched < n_left t do
    incr round;
    if until_stable && !round > rounds * 1000 then progress := false
    else begin
      progress := false;
      (* 1. proposals: every unmatched request picks one candidate with
         spare capacity, uniformly at random *)
      let proposals = Array.init (max (n_right t) 1) (fun _ -> Vec.create ()) in
      for l = 0 to n_left t - 1 do
        if assignment.(l) = -1 then begin
          let open_candidates =
            Array.to_list adj.(l)
            |> List.filter (fun r -> right_load.(r) < right_cap.(r))
          in
          match open_candidates with
          | [] -> ()
          | candidates ->
              let arr = Array.of_list candidates in
              Vec.push proposals.(arr.(Vod_util.Prng.int g (Array.length arr))) l
        end
      done;
      (* 2. acceptance: each box takes a random subset up to capacity *)
      for r = 0 to n_right t - 1 do
        let incoming = Vec.to_array proposals.(r) in
        if Array.length incoming > 0 then begin
          Vod_util.Sample.shuffle g incoming;
          let accept = min (Array.length incoming) (right_cap.(r) - right_load.(r)) in
          for i = 0 to accept - 1 do
            assignment.(incoming.(i)) <- r;
            right_load.(r) <- right_load.(r) + 1;
            incr matched;
            progress := true
          done
        end
      done
    end
  done;
  { matched = !matched; assignment; right_load }

let is_feasible ?(algorithm = Dinic_flow) t =
  let o = solve ~algorithm t in
  o.matched = n_left t

type violator = { requests : int list; servers : int list; server_slots : int }

let hall_violator t =
  let net, src, sink, _middle = build_network t in
  let value = Dinic.max_flow net ~src ~sink in
  if value = n_left t then None
  else begin
    (* Source side S of the min cut.  X = requests in S; because
       request->box arcs carry flow at most 1 but have capacity 1 — we
       need them uncuttable, so recompute reachability treating middle
       arcs as uncut: a middle arc from a reachable request is only
       saturated if the request is matched, and then the box is reached
       through the reverse arc of the box->sink path...  To keep the
       certificate exact we rebuild the network with unbounded middle
       arcs. *)
    let adj = adjacency t in
    let right_cap = Csr.right_cap_array t.csr in
    let left_base = 1 in
    let right_base = 1 + n_left t in
    let sink' = 1 + n_left t + n_right t in
    let net' = F.create (sink' + 1) in
    for l = 0 to n_left t - 1 do
      ignore (F.add_edge net' ~src:0 ~dst:(left_base + l) ~cap:1)
    done;
    for l = 0 to n_left t - 1 do
      Array.iter
        (fun r ->
          ignore
            (F.add_edge net' ~src:(left_base + l) ~dst:(right_base + r)
               ~cap:F.infinite_capacity))
        adj.(l)
    done;
    for r = 0 to n_right t - 1 do
      ignore (F.add_edge net' ~src:(right_base + r) ~dst:sink' ~cap:right_cap.(r))
    done;
    let value' = Dinic.max_flow net' ~src:0 ~sink:sink' in
    assert (value' = value);
    let reachable = F.residual_reachable net' ~src:0 in
    let requests = ref [] and servers = ref [] and slots = ref 0 in
    for l = n_left t - 1 downto 0 do
      if Bitset.mem reachable (left_base + l) then requests := l :: !requests
    done;
    for r = n_right t - 1 downto 0 do
      if Bitset.mem reachable (right_base + r) then begin
        servers := r :: !servers;
        slots := !slots + right_cap.(r)
      end
    done;
    Some { requests = !requests; servers = !servers; server_slots = !slots }
  end

(* ------------------------------------------------------------------ *)
(* Warm-start incremental solving                                      *)
(* ------------------------------------------------------------------ *)

module Incremental = struct
  (* Observability hooks (registered once; O(1) per event recorded). *)
  let obs_reseated =
    Vod_obs.Registry.counter Vod_obs.Registry.default "matching.seats_revalidated"
  let obs_dirty = Vod_obs.Registry.counter Vod_obs.Registry.default "matching.dirty"
  let obs_fallbacks =
    Vod_obs.Registry.counter Vod_obs.Registry.default "matching.fallbacks"
  let obs_repairs =
    Vod_obs.Registry.counter Vod_obs.Registry.default "matching.incremental_solves"
  let obs_repaired = Vod_obs.Registry.counter Vod_obs.Registry.default "matching.repaired"

  type stats = {
    rounds : int;
    full_solves : int;
    incremental_solves : int;
    reseated : int;
    repaired : int;
  }

  type state = {
    algorithm : algorithm;
    fallback_threshold : float;
    mutable s_rounds : int;
    mutable s_full : int;
    mutable s_incremental : int;
    mutable s_reseated : int;
    mutable s_repaired : int;
  }

  let create ?(algorithm = Hopcroft_karp_matching) ?(fallback_threshold = 0.5) () =
    (match algorithm with
    | Hopcroft_karp_matching | Dinic_flow -> ()
    | Push_relabel_flow ->
        invalid_arg "Bipartite.Incremental.create: push-relabel has no warm-start path");
    if not (fallback_threshold >= 0.0 && fallback_threshold <= 1.0) then
      invalid_arg "Bipartite.Incremental.create: threshold outside [0, 1]";
    {
      algorithm;
      fallback_threshold;
      s_rounds = 0;
      s_full = 0;
      s_incremental = 0;
      s_reseated = 0;
      s_repaired = 0;
    }

  let stats st =
    {
      rounds = st.s_rounds;
      full_solves = st.s_full;
      incremental_solves = st.s_incremental;
      reseated = st.s_reseated;
      repaired = st.s_repaired;
    }

  (* Validate the caller's warm seats against the *current* instance:
     the previous server must still be adjacent (departures, cache
     expiry) and still within its possibly-shrunk capacity (churn,
     relay reservation changes).  The cleaned seating lands in the
     arena's [warm] slab (the solver below reads it as its warm start)
     and the per-right load scratch rides in [right_load], which every
     solver re-initialises anyway — so validation allocates nothing. *)
  let validate_seats t arena warm =
    let csr = csr t in
    let nl = Csr.n_left csr and nr = Csr.n_right csr in
    let row_start = Csr.row_start csr and col = Csr.col csr in
    let right_cap = Csr.right_cap_array csr in
    let cleaned = Arena.ints arena.Arena.warm (max nl 1) in
    let load = Arena.ints arena.Arena.right_load (max nr 1) in
    Array.fill load 0 nr 0;
    let seated = ref 0 in
    for l = 0 to nl - 1 do
      let r = warm.(l) in
      cleaned.(l) <- -1;
      if r >= 0 && r < nr && load.(r) < right_cap.(r) then begin
        let adjacent = ref false in
        let i = ref row_start.(l) in
        let stop = row_start.(l + 1) in
        while (not !adjacent) && !i < stop do
          if col.(!i) = r then adjacent := true;
          incr i
        done;
        if !adjacent then begin
          cleaned.(l) <- r;
          load.(r) <- load.(r) + 1;
          incr seated
        end
      end
    done;
    (cleaned, !seated)

  let solve st ?arena ?warm_start ?(layout = false) t =
    let arena = match arena with Some a -> a | None -> Arena.create () in
    st.s_rounds <- st.s_rounds + 1;
    (match warm_start with
    | Some ws when Array.length ws <> n_left t ->
        invalid_arg "Bipartite.Incremental.solve: warm_start length mismatch"
    | _ -> ());
    let cleaned, seated =
      Vod_obs.Span.with_ ~name:"revalidate" (fun () ->
          match warm_start with
          | None ->
              let cleaned = Arena.ints arena.Arena.warm (max (n_left t) 1) in
              Array.fill cleaned 0 (n_left t) (-1);
              (cleaned, 0)
          | Some ws -> validate_seats t arena ws)
    in
    st.s_reseated <- st.s_reseated + seated;
    Vod_obs.Registry.add obs_reseated seated;
    let dirty = n_left t - seated in
    Vod_obs.Registry.add obs_dirty dirty;
    if
      n_left t > 0
      && float_of_int dirty > st.fallback_threshold *. float_of_int (n_left t)
    then begin
      st.s_full <- st.s_full + 1;
      Vod_obs.Registry.incr obs_fallbacks;
      Vod_obs.Span.with_ ~name:"fallback" (fun () ->
          solve ~arena ~algorithm:st.algorithm ~layout t)
    end
    else begin
      st.s_incremental <- st.s_incremental + 1;
      Vod_obs.Registry.incr obs_repairs;
      let outcome =
        Vod_obs.Span.with_ ~name:"repair" (fun () ->
            let lay = if layout then Some (layout_of t) else None in
            let instance =
              match lay with Some l -> Layout.prepare l (csr t) | None -> csr t
            in
            let warm =
              match lay with Some l -> Layout.project_warm l cleaned | None -> cleaned
            in
            let size =
              match st.algorithm with
              | Hopcroft_karp_matching ->
                  Hopcroft_karp.solve_csr ~warm_start:warm ~arena instance
              | Dinic_flow -> Dinic.solve_csr ~warm_start:warm ~arena instance
              | Push_relabel_flow -> assert false
            in
            (match lay with Some l -> Layout.commit l arena | None -> ());
            outcome_of_arena t arena size)
      in
      st.s_repaired <- st.s_repaired + (outcome.matched - seated);
      Vod_obs.Registry.add obs_repaired (outcome.matched - seated);
      outcome
    end
end

let solve_incremental st ?arena ?warm_start ?layout t =
  Incremental.solve st ?arena ?warm_start ?layout t
