(** Component-sharded parallel maximum matching.

    A round's bipartite instance decomposes into independent connected
    components — in the VoD model, one per swarm of boxes caching the
    same stripes — and a maximum matching of the whole instance is the
    disjoint union of maximum matchings of its components.  This module
    labels the components with a union-find pass over the finalized
    edge set, groups them into at most [max_shards] shards of balanced
    edge mass, builds each shard as its own [Csr.t] (local vertex ids,
    global ids kept in translation tables), solves the shards
    concurrently over {!Vod_par.Par.map}, and merges the per-shard
    assignments back into global arrays.

    Determinism contract (tested in [test_graph] and the vod_check
    oracle panel):

    - shard composition depends only on the instance and [max_shards],
      never on [jobs]: components are numbered by first appearance in
      left-ascending order and packed into shards by cumulative edge
      count, so the same instance always shards the same way;
    - merging walks shards in fixed ascending order, so the final
      assignment is bit-identical for any [jobs] — [Par.map] only
      changes which domain solves a shard, not what it returns;
    - each shard owns a private [Arena.t] and a private
      [Vod_obs.Registry.t] (arenas are not domain-safe); the
      registries are absorbed into [Registry.default] in shard order
      after the join;
    - the per-shard solves themselves are [Hopcroft_karp.solve_csr],
      whose phases are confined to one component's vertices, so the
      merged assignment is identical to a single whole-instance solve
      (components never interact through BFS distances or seat
      counters). *)

type t

val create : ?max_shards:int -> unit -> t
(** A reusable sharding context.  [max_shards] bounds the number of
    shards a partition produces (default 64); it is a property of the
    context, not of the machine, so outputs are comparable across
    hosts and job counts.
    @raise Invalid_argument on [max_shards < 1]. *)

val max_shards : t -> int

val partition : t -> Csr.t -> unit
(** Label connected components of the (finalized) instance and build
    per-shard CSR instances.  O(edges + vertices), allocation-free at
    the steady state.  The shard CSRs borrow nothing from the input:
    they copy edges and right capacities, so the input may be reused
    immediately. *)

val n_components : t -> int
(** Components found by the last [partition] (isolated vertices are in
    no component). *)

val n_shards : t -> int
(** Shards built by the last [partition]; [min max_shards n_components]. *)

val component_of_left : t -> int array
(** Borrowed; per left vertex, its component id or -1 for degree 0.
    Valid until the next [partition]. *)

val component_of_right : t -> int array
(** Borrowed; per right vertex, its component id or -1 if no edge
    touches it. *)

val shard_csr : t -> int -> Csr.t
(** The [i]-th shard's local-id instance (borrowed; for tests).
    @raise Invalid_argument on an out-of-range shard. *)

val shard_lefts : t -> int -> int array
(** Borrowed; per local left of shard [i], its global id (entries
    [0 .. n_left(shard)-1]). *)

val shard_rights : t -> int -> int array
(** Borrowed; per local right of shard [i], its global id. *)

val solve : ?jobs:int -> ?warm_start:int array -> ?layout:bool -> t -> Csr.t -> int
(** [solve t csr] = [partition t csr], solve every shard (concurrently
    when [jobs > 1] on the domains backend), merge.  Returns the
    matching size; the merged assignment and right loads are read with
    {!assignment} / {!right_load}.  [warm_start] is a global
    left-to-right seating hint (length at least [n_left]); it is
    projected into per-shard hints (a seat outside the left's own
    component is discarded — it could never be adjacent).  [layout]
    (default false) additionally runs each shard's solver on a
    {!Layout} component-clustered renumbering of the shard instance;
    the merged result is bit-identical either way (the permutation is
    order-preserving per component — DESIGN.md section 12).
    @raise Invalid_argument when [warm_start] is shorter than the
    instance's [n_left]. *)

val assignment : t -> int array
(** Borrowed; per global left, the matched right or -1.  Valid until
    the next [solve]. *)

val right_load : t -> int array
(** Borrowed; per global right, seats taken. *)
