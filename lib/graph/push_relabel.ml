module F = Flow_network

(* Observability hooks (registered once; O(1) per event recorded). *)
let obs_pushes = Vod_obs.Registry.counter Vod_obs.Registry.default "pr.pushes"
let obs_relabels = Vod_obs.Registry.counter Vod_obs.Registry.default "pr.relabels"

let max_flow net ~src ~sink =
  let n = F.node_count net in
  if src < 0 || src >= n || sink < 0 || sink >= n then
    invalid_arg "Push_relabel.max_flow: endpoint out of range";
  if src = sink then invalid_arg "Push_relabel.max_flow: src = sink";
  let excess = Array.make n 0 in
  let height = Array.make n 0 in
  let height_count = Array.make ((2 * n) + 1) 0 in
  let adjacency = Array.make n [||] in
  for v = 0 to n - 1 do
    let arcs = ref [] in
    F.iter_arcs_from net v (fun a -> arcs := a :: !arcs);
    adjacency.(v) <- Array.of_list !arcs
  done;
  let it = Array.make n 0 in
  let active = Queue.create () in
  let in_queue = Array.make n false in
  let enqueue v =
    if (not in_queue.(v)) && v <> src && v <> sink && excess.(v) > 0 then begin
      in_queue.(v) <- true;
      Queue.add v active
    end
  in
  height.(src) <- n;
  height_count.(0) <- n - 1;
  height_count.(n) <- 1;
  (* Saturate all source arcs. *)
  Array.iter
    (fun a ->
      let r = F.residual net a in
      if r > 0 then begin
        F.push net a r;
        excess.(F.arc_dst net a) <- excess.(F.arc_dst net a) + r;
        excess.(src) <- excess.(src) - r
      end)
    adjacency.(src);
  for v = 0 to n - 1 do
    enqueue v
  done;
  let relabel v =
    (* Gap heuristic: if v's old height level empties, every node above it
       is unreachable from the sink and can jump to n+1. *)
    Vod_obs.Registry.incr obs_relabels;
    let old_height = height.(v) in
    let min_height = ref ((2 * n) + 1) in
    Array.iter
      (fun a ->
        if F.residual net a > 0 then
          min_height := min !min_height (height.(F.arc_dst net a) + 1))
      adjacency.(v);
    let new_height = if !min_height > 2 * n then 2 * n else !min_height in
    height_count.(old_height) <- height_count.(old_height) - 1;
    height.(v) <- new_height;
    height_count.(new_height) <- height_count.(new_height) + 1;
    if height_count.(old_height) = 0 && old_height < n then
      for w = 0 to n - 1 do
        if w <> src && height.(w) > old_height && height.(w) <= n then begin
          height_count.(height.(w)) <- height_count.(height.(w)) - 1;
          height.(w) <- n + 1;
          height_count.(n + 1) <- height_count.(n + 1) + 1
        end
      done;
    it.(v) <- 0
  in
  let discharge v =
    while excess.(v) > 0 do
      if it.(v) = Array.length adjacency.(v) then relabel v
      else begin
        let a = adjacency.(v).(it.(v)) in
        let w = F.arc_dst net a in
        let r = F.residual net a in
        if r > 0 && height.(v) = height.(w) + 1 then begin
          Vod_obs.Registry.incr obs_pushes;
          let delta = min excess.(v) r in
          F.push net a delta;
          excess.(v) <- excess.(v) - delta;
          excess.(w) <- excess.(w) + delta;
          enqueue w
        end
        else it.(v) <- it.(v) + 1
      end
    done
  in
  while not (Queue.is_empty active) do
    let v = Queue.pop active in
    in_queue.(v) <- false;
    discharge v
  done;
  excess.(sink)
