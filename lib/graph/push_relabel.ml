module F = Flow_network

(* Observability hooks (registered once; O(1) per event recorded). *)
let obs_pushes = Vod_obs.Registry.counter Vod_obs.Registry.default "pr.pushes"
let obs_relabels = Vod_obs.Registry.counter Vod_obs.Registry.default "pr.relabels"

let max_flow net ~src ~sink =
  let n = F.node_count net in
  if src < 0 || src >= n || sink < 0 || sink >= n then
    invalid_arg "Push_relabel.max_flow: endpoint out of range";
  if src = sink then invalid_arg "Push_relabel.max_flow: src = sink";
  let excess = Array.make n 0 in
  let height = Array.make n 0 in
  let height_count = Array.make ((2 * n) + 1) 0 in
  let adjacency = Array.make n [||] in
  for v = 0 to n - 1 do
    let arcs = ref [] in
    F.iter_arcs_from net v (fun a -> arcs := a :: !arcs);
    adjacency.(v) <- Array.of_list !arcs
  done;
  let it = Array.make n 0 in
  let active = Queue.create () in
  let in_queue = Array.make n false in
  let enqueue v =
    if (not in_queue.(v)) && v <> src && v <> sink && excess.(v) > 0 then begin
      in_queue.(v) <- true;
      Queue.add v active
    end
  in
  height.(src) <- n;
  height_count.(0) <- n - 1;
  height_count.(n) <- 1;
  (* Saturate all source arcs. *)
  Array.iter
    (fun a ->
      let r = F.residual net a in
      if r > 0 then begin
        F.push net a r;
        excess.(F.arc_dst net a) <- excess.(F.arc_dst net a) + r;
        excess.(src) <- excess.(src) - r
      end)
    adjacency.(src);
  for v = 0 to n - 1 do
    enqueue v
  done;
  let relabel v =
    (* Gap heuristic: if v's old height level empties, every node above it
       is unreachable from the sink and can jump to n+1. *)
    Vod_obs.Registry.incr obs_relabels;
    let old_height = height.(v) in
    let min_height = ref ((2 * n) + 1) in
    Array.iter
      (fun a ->
        if F.residual net a > 0 then
          min_height := min !min_height (height.(F.arc_dst net a) + 1))
      adjacency.(v);
    let new_height = if !min_height > 2 * n then 2 * n else !min_height in
    height_count.(old_height) <- height_count.(old_height) - 1;
    height.(v) <- new_height;
    height_count.(new_height) <- height_count.(new_height) + 1;
    if height_count.(old_height) = 0 && old_height < n then
      for w = 0 to n - 1 do
        if w <> src && height.(w) > old_height && height.(w) <= n then begin
          height_count.(height.(w)) <- height_count.(height.(w)) - 1;
          height.(w) <- n + 1;
          height_count.(n + 1) <- height_count.(n + 1) + 1
        end
      done;
    it.(v) <- 0
  in
  let discharge v =
    while excess.(v) > 0 do
      if it.(v) = Array.length adjacency.(v) then relabel v
      else begin
        let a = adjacency.(v).(it.(v)) in
        let w = F.arc_dst net a in
        let r = F.residual net a in
        if r > 0 && height.(v) = height.(w) + 1 then begin
          Vod_obs.Registry.incr obs_pushes;
          let delta = min excess.(v) r in
          F.push net a delta;
          excess.(v) <- excess.(v) - delta;
          excess.(w) <- excess.(w) + delta;
          enqueue w
        end
        else it.(v) <- it.(v) + 1
      end
    done
  in
  while not (Queue.is_empty active) do
    let v = Queue.pop active in
    in_queue.(v) <- false;
    discharge v
  done;
  excess.(sink)

(* CSR bipartite specialisation over the implicit matching network
   (src = nl+nr, sink = nl+nr+1; unit arcs src->left and left->right,
   right->sink with cap right_cap).  Arc lists are never materialised:
   a left's arcs are [reverse-to-src; its CSR row], a right's arcs are
   [forward-to-sink; the CSR transpose of its column], addressed through
   per-node current-arc pointers.  Flows live in flat 0/1 arrays
   ([src_flow] per left, [edge_flow] per CSR edge) plus per-right load
   counters for the sink arcs.  All scratch lives in the arena, so
   steady-state calls allocate nothing. *)
let solve_csr ~arena csr =
  let nl = Csr.n_left csr and nr = Csr.n_right csr in
  let row_start = Csr.row_start csr and col = Csr.col csr in
  let cap = Csr.right_cap_array csr in
  let m = Csr.n_edges csr in
  let n = nl + nr + 2 in
  let src = nl + nr and sink = nl + nr + 1 in
  let excess = Arena.ints arena.Arena.excess n in
  let height = Arena.ints arena.Arena.height n in
  let height_count = Arena.ints arena.Arena.height_count ((2 * n) + 1) in
  let edge_flow = Arena.ints arena.Arena.edge_flow (max m 1) in
  let src_flow = Arena.ints arena.Arena.src_flow (max nl 1) in
  let load = Arena.ints arena.Arena.right_load (max nr 1) in
  let it = Arena.ints arena.Arena.pr_it (max (nl + nr) 1) in
  let in_queue = Arena.ints arena.Arena.in_queue (max (nl + nr) 1) in
  let queue = Arena.ints arena.Arena.queue (max (nl + nr) 1) in
  let t_row_start = Arena.ints arena.Arena.t_row_start (nr + 1) in
  let t_eid = Arena.ints arena.Arena.t_eid (max m 1) in
  let edge_left = Arena.ints arena.Arena.edge_left (max m 1) in
  (* transpose: incoming edge ids per right, via counting sort (the
     cursor rides in [it], re-zeroed below) *)
  Array.fill t_row_start 0 (nr + 1) 0;
  for l = 0 to nl - 1 do
    for e = row_start.(l) to row_start.(l + 1) - 1 do
      edge_left.(e) <- l;
      let r = col.(e) in
      t_row_start.(r + 1) <- t_row_start.(r + 1) + 1
    done
  done;
  for r = 0 to nr - 1 do
    t_row_start.(r + 1) <- t_row_start.(r + 1) + t_row_start.(r);
    it.(r) <- t_row_start.(r)
  done;
  for e = 0 to m - 1 do
    let r = col.(e) in
    t_eid.(it.(r)) <- e;
    it.(r) <- it.(r) + 1
  done;
  Array.fill excess 0 n 0;
  Array.fill height 0 n 0;
  Array.fill height_count 0 ((2 * n) + 1) 0;
  Array.fill edge_flow 0 m 0;
  Array.fill load 0 nr 0;
  Array.fill it 0 (nl + nr) 0;
  Array.fill in_queue 0 (nl + nr) 0;
  let qcap = max (nl + nr) 1 in
  let head = ref 0 and tail = ref 0 in
  let enqueue v =
    if in_queue.(v) = 0 && excess.(v) > 0 then begin
      in_queue.(v) <- 1;
      queue.(!tail mod qcap) <- v;
      incr tail
    end
  in
  height.(src) <- n;
  height_count.(0) <- n - 1;
  height_count.(n) <- 1;
  (* saturate the source arcs: every left starts with one unit *)
  for l = 0 to nl - 1 do
    src_flow.(l) <- 1;
    excess.(l) <- 1;
    enqueue l
  done;
  let deg v = if v < nl then row_start.(v + 1) - row_start.(v) else t_row_start.(v - nl + 1) - t_row_start.(v - nl) in
  let relabel v =
    (* Gap heuristic: if v's old height level empties, every node above it
       is unreachable from the sink and can jump to n+1. *)
    Vod_obs.Registry.incr obs_relabels;
    let old_height = height.(v) in
    let min_height = ref ((2 * n) + 1) in
    if v < nl then begin
      let l = v in
      if src_flow.(l) > 0 then min_height := min !min_height (height.(src) + 1);
      for e = row_start.(l) to row_start.(l + 1) - 1 do
        if edge_flow.(e) = 0 then min_height := min !min_height (height.(nl + col.(e)) + 1)
      done
    end
    else begin
      let r = v - nl in
      if load.(r) < cap.(r) then min_height := min !min_height (height.(sink) + 1);
      for j = t_row_start.(r) to t_row_start.(r + 1) - 1 do
        let e = t_eid.(j) in
        if edge_flow.(e) = 1 then min_height := min !min_height (height.(edge_left.(e)) + 1)
      done
    end;
    let new_height = if !min_height > 2 * n then 2 * n else !min_height in
    height_count.(old_height) <- height_count.(old_height) - 1;
    height.(v) <- new_height;
    height_count.(new_height) <- height_count.(new_height) + 1;
    if height_count.(old_height) = 0 && old_height < n then
      for w = 0 to nl + nr - 1 do
        if height.(w) > old_height && height.(w) <= n then begin
          height_count.(height.(w)) <- height_count.(height.(w)) - 1;
          height.(w) <- n + 1;
          height_count.(n + 1) <- height_count.(n + 1) + 1
        end
      done;
    it.(v) <- 0
  in
  let discharge v =
    while excess.(v) > 0 do
      if it.(v) > deg v then relabel v
      else if v < nl then begin
        let l = v in
        let k = it.(v) in
        if k = 0 then begin
          (* reverse arc to the source *)
          if src_flow.(l) > 0 && height.(l) = height.(src) + 1 then begin
            Vod_obs.Registry.incr obs_pushes;
            src_flow.(l) <- 0;
            excess.(l) <- excess.(l) - 1
          end
          else it.(v) <- it.(v) + 1
        end
        else begin
          let e = row_start.(l) + k - 1 in
          let r = col.(e) in
          if edge_flow.(e) = 0 && height.(l) = height.(nl + r) + 1 then begin
            Vod_obs.Registry.incr obs_pushes;
            edge_flow.(e) <- 1;
            excess.(l) <- excess.(l) - 1;
            excess.(nl + r) <- excess.(nl + r) + 1;
            enqueue (nl + r)
          end
          else it.(v) <- it.(v) + 1
        end
      end
      else begin
        let r = v - nl in
        let k = it.(v) in
        if k = 0 then begin
          (* forward arc to the sink *)
          if load.(r) < cap.(r) && height.(v) = height.(sink) + 1 then begin
            Vod_obs.Registry.incr obs_pushes;
            let delta = min excess.(v) (cap.(r) - load.(r)) in
            load.(r) <- load.(r) + delta;
            excess.(v) <- excess.(v) - delta;
            excess.(sink) <- excess.(sink) + delta
          end
          else it.(v) <- it.(v) + 1
        end
        else begin
          let e = t_eid.(t_row_start.(r) + k - 1) in
          let l' = edge_left.(e) in
          if edge_flow.(e) = 1 && height.(v) = height.(l') + 1 then begin
            Vod_obs.Registry.incr obs_pushes;
            edge_flow.(e) <- 0;
            excess.(v) <- excess.(v) - 1;
            excess.(l') <- excess.(l') + 1;
            enqueue l'
          end
          else it.(v) <- it.(v) + 1
        end
      end
    done
  in
  while !head < !tail do
    let v = queue.(!head mod qcap) in
    incr head;
    in_queue.(v) <- 0;
    discharge v
  done;
  let assignment = Arena.ints arena.Arena.assignment (max nl 1) in
  for l = 0 to nl - 1 do
    let a = ref (-1) in
    for e = row_start.(l) to row_start.(l + 1) - 1 do
      if edge_flow.(e) = 1 then a := col.(e)
    done;
    assignment.(l) <- !a
  done;
  excess.(sink)
