(* Cache-aware component-clustered vertex renumbering.

   [prepare] labels connected components over the finalized edge set
   (union-find over the packed edge list), orders them by first left
   appearance and renumbers vertices so each component occupies a
   contiguous id range, keeping ascending original order within a
   component.  Degree-0 vertices go to the tail.  The permutation is
   order-preserving per component, so:

   - the permuted CSR can be emitted directly in finalized form
     ([Csr.load_permuted], no counting sort), and
   - the Hopcroft-Karp / Dinic kernels produce the bit-identical
     matching after [commit] maps results back to original ids — their
     behaviour restricted to a component only depends on the relative
     order of that component's vertices (the determinism contract of
     DESIGN.md section 12).

   Instances that are already clustered (one giant component, or
   components laid out contiguously) hit the identity fast path:
   [prepare] returns the original instance and [commit] is a no-op.
   All tables and the permuted instance are reused across calls, so
   steady-state rounds allocate nothing. *)

type t = {
  permuted : Csr.t;
  mutable left_old : int array; (* new left -> old left *)
  mutable left_new : int array; (* old left -> new left *)
  mutable right_old : int array;
  mutable right_new : int array;
  mutable scratch : int array; (* unpermute buffer for [commit] *)
  mutable warm : int array; (* projected warm-start hints *)
  mutable identity : bool;
  mutable nl : int;
  mutable nr : int;
  (* union-find scratch over n_left + n_right vertices *)
  mutable parent : int array;
  mutable usize : int array;
  mutable comp_of_root : int array;
  mutable comp_cursor : int array;
}

let next_cap n =
  let c = ref 8 in
  while !c < n do
    c := 2 * !c
  done;
  !c

let ensure a n = if Array.length a >= n then a else Array.make (next_cap n) 0

let create () =
  {
    permuted = Csr.create ();
    left_old = [||];
    left_new = [||];
    right_old = [||];
    right_new = [||];
    scratch = [||];
    warm = [||];
    identity = true;
    nl = 0;
    nr = 0;
    parent = [||];
    usize = [||];
    comp_of_root = [||];
    comp_cursor = [||];
  }

let is_identity t = t.identity
let left_old t = t.left_old
let right_old t = t.right_old

(* union-find: path halving + union by size *)
let rec find parent i =
  let p = parent.(i) in
  if p = i then i
  else begin
    parent.(i) <- parent.(p);
    find parent parent.(i)
  end

let union parent usize a b =
  let ra = find parent a and rb = find parent b in
  if ra <> rb then begin
    let ra, rb = if usize.(ra) >= usize.(rb) then (ra, rb) else (rb, ra) in
    parent.(rb) <- ra;
    usize.(ra) <- usize.(ra) + usize.(rb)
  end

let prepare t csr =
  let nl = Csr.n_left csr and nr = Csr.n_right csr in
  let m = Csr.n_edges csr in
  let pe = Csr.packed_edges csr in
  t.nl <- nl;
  t.nr <- nr;
  let nv = nl + nr in
  let parent = ensure t.parent (max nv 1) in
  let usize = ensure t.usize (max nv 1) in
  t.parent <- parent;
  t.usize <- usize;
  for i = 0 to nv - 1 do
    parent.(i) <- i;
    usize.(i) <- 1
  done;
  for i = 0 to m - 1 do
    let p = pe.(i) in
    union parent usize (p lsr Csr.packed_shift) (nl + (p land Csr.packed_mask))
  done;
  (* dense component ids by first left appearance (the same numbering
     as [Shard.partition]); -1 for degree-0 vertices *)
  let comp_of_root = ensure t.comp_of_root (max nv 1) in
  t.comp_of_root <- comp_of_root;
  Array.fill comp_of_root 0 nv (-1);
  let row_start = Csr.row_start csr in
  let ncomp = ref 0 in
  for l = 0 to nl - 1 do
    if row_start.(l + 1) > row_start.(l) then begin
      let r = find parent l in
      if comp_of_root.(r) < 0 then begin
        comp_of_root.(r) <- !ncomp;
        incr ncomp
      end
    end
  done;
  let ncomp = !ncomp in
  (* cluster: counting sort of lefts by component id, original order
     within a component (stable); degree-0 lefts close the tail *)
  let left_old = ensure t.left_old (max nl 1) in
  let left_new = ensure t.left_new (max nl 1) in
  let right_old = ensure t.right_old (max nr 1) in
  let right_new = ensure t.right_new (max nr 1) in
  let cursor = ensure t.comp_cursor (ncomp + 1) in
  t.left_old <- left_old;
  t.left_new <- left_new;
  t.right_old <- right_old;
  t.right_new <- right_new;
  t.comp_cursor <- cursor;
  Array.fill cursor 0 (ncomp + 1) 0;
  for l = 0 to nl - 1 do
    if row_start.(l + 1) > row_start.(l) then begin
      let c = comp_of_root.(find parent l) in
      cursor.(c) <- cursor.(c) + 1
    end
    else cursor.(ncomp) <- cursor.(ncomp) + 1
  done;
  let s = ref 0 in
  for c = 0 to ncomp do
    let n = cursor.(c) in
    cursor.(c) <- !s;
    s := !s + n
  done;
  let identity = ref true in
  for l = 0 to nl - 1 do
    let c =
      if row_start.(l + 1) > row_start.(l) then comp_of_root.(find parent l) else ncomp
    in
    let l' = cursor.(c) in
    cursor.(c) <- l' + 1;
    left_old.(l') <- l;
    left_new.(l) <- l';
    if l' <> l then identity := false
  done;
  Array.fill cursor 0 (ncomp + 1) 0;
  for r = 0 to nr - 1 do
    let c = comp_of_root.(find parent (nl + r)) in
    let c = if c < 0 then ncomp else c in
    cursor.(c) <- cursor.(c) + 1
  done;
  let s = ref 0 in
  for c = 0 to ncomp do
    let n = cursor.(c) in
    cursor.(c) <- !s;
    s := !s + n
  done;
  for r = 0 to nr - 1 do
    let c = comp_of_root.(find parent (nl + r)) in
    let c = if c < 0 then ncomp else c in
    let r' = cursor.(c) in
    cursor.(c) <- r' + 1;
    right_old.(r') <- r;
    right_new.(r) <- r';
    if r' <> r then identity := false
  done;
  t.identity <- !identity;
  if !identity then csr
  else begin
    Csr.load_permuted t.permuted csr ~left_old ~right_old ~right_new;
    t.permuted
  end

let project_warm t warm =
  if t.identity then warm
  else begin
    let nl = t.nl and nr = t.nr in
    if Array.length warm < nl then invalid_arg "Layout.project_warm: warm too short";
    let out = ensure t.warm (max nl 1) in
    t.warm <- out;
    for l' = 0 to nl - 1 do
      let r = warm.(t.left_old.(l')) in
      out.(l') <- (if r >= 0 && r < nr then t.right_new.(r) else -1)
    done;
    out
  end

let commit t arena =
  if not t.identity then begin
    let nl = t.nl and nr = t.nr in
    let assignment = Arena.assignment arena in
    let right_load = Arena.right_load arena in
    let scratch = ensure t.scratch (max (max nl nr) 1) in
    t.scratch <- scratch;
    Array.blit assignment 0 scratch 0 nl;
    for l' = 0 to nl - 1 do
      let r' = scratch.(l') in
      assignment.(t.left_old.(l')) <- (if r' < 0 then -1 else t.right_old.(r'))
    done;
    Array.blit right_load 0 scratch 0 nr;
    for r' = 0 to nr - 1 do
      right_load.(t.right_old.(r')) <- scratch.(r')
    done
  end
