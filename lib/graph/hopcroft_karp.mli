(** Capacitated Hopcroft–Karp bipartite matching.

    Left vertices each need one unit (a stripe request); right vertices
    accept up to [right_cap.(j)] units (a box's stripe-upload slots).
    This is a direct combinatorial solver, independent of the flow-based
    path, used for cross-validation and benchmarking (experiment E9).

    Two implementations coexist: [solve_csr], the flat zero-allocation
    core over [Csr.t] + [Arena.t] (per-right seat counters), and
    [solve_slots], the historical slot-expansion algorithm kept so the
    vod_check oracle panel can diff the two.  [solve] is a thin shim
    over the CSR core with the historical signature. *)

type result = {
  size : int;  (** Number of matched left vertices. *)
  assignment : int array;  (** left -> matched right, or -1. *)
  right_load : int array;  (** Units used per right vertex. *)
}

val solve_csr : ?warm_start:int array -> arena:Arena.t -> Csr.t -> int
(** Maximum matching over a finalized CSR instance.  Returns the
    matching size; the assignment (left -> right or -1) and per-right
    loads are left in [Arena.assignment] / [Arena.right_load] (borrowed,
    valid until the arena's next solve).  All scratch lives in the
    arena, so steady-state calls allocate nothing.  [warm_start] as in
    [solve], except its length may exceed [n_left] (arena slabs are
    capacity-sized); only the first [n_left] entries are read.
    @raise Invalid_argument when [warm_start] is shorter than
    [n_left]. *)

val solve :
  ?warm_start:int array ->
  n_left:int ->
  n_right:int ->
  adj:int array array ->
  right_cap:int array ->
  unit ->
  result
(** [warm_start] (length [n_left], entries a right vertex or -1) seats
    each left on its previous right when still adjacent and not over
    capacity, then runs the usual phases over the remaining free lefts
    only — the warm-started incremental path.  The result is always a
    {e maximum} matching regardless of the warm start.
    @raise Invalid_argument on negative capacities, adjacency out of
    range, or mismatched array lengths (including [warm_start]). *)

val solve_slots :
  ?warm_start:int array ->
  n_left:int ->
  n_right:int ->
  adj:int array array ->
  right_cap:int array ->
  unit ->
  result
(** The legacy slot-expansion implementation of [solve] (rights expanded
    into unit slots).  Same contract and validation as [solve]; kept as
    an independent algorithm for differential checking. *)
