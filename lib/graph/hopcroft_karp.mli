(** Capacitated Hopcroft–Karp bipartite matching.

    Left vertices each need one unit (a stripe request); right vertices
    accept up to [right_cap.(j)] units (a box's stripe-upload slots).
    This is a direct combinatorial solver, independent of the flow-based
    path, used for cross-validation and benchmarking (experiment E9). *)

type result = {
  size : int;  (** Number of matched left vertices. *)
  assignment : int array;  (** left -> matched right, or -1. *)
  right_load : int array;  (** Units used per right vertex. *)
}

val solve :
  ?warm_start:int array ->
  n_left:int ->
  n_right:int ->
  adj:int array array ->
  right_cap:int array ->
  unit ->
  result
(** [warm_start] (length [n_left], entries a right vertex or -1) seats
    each left on its previous right when still adjacent and not over
    capacity, then runs the usual phases over the remaining free lefts
    only — the warm-started incremental path.  The result is always a
    {e maximum} matching regardless of the warm start.
    @raise Invalid_argument on negative capacities, adjacency out of
    range, or mismatched array lengths (including [warm_start]). *)
