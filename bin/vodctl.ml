(* vodctl — command-line front end to the library.

   Subcommands:
     bounds    derive the Theorem 1/2 parameters and the union bound
     allocate  build an allocation and report balance + adversarial audit
     simulate  drive a workload through the round engine
     attack    drive an adversarial generator and report the outcome
     sweep     threshold sweep over the upload capacity u
     chaos     run a fault-injection scenario with self-healing repair
               (--slo-out writes the vod-slo/1 burn-rate verdict stream,
               --obs-out/--obs-summary capture per-replication traces)
     battery   run a scenario battery into a ranked KPI scorecard
               (--obs-out/--obs-summary capture per-cell traces)
     obs-report  validate, summarise or flamegraph-fold (--flame) a
               vod-obs JSONL trace
     top       live dashboard over a simulate workload or chaos
               scenario: sparklines, SLO burn states, repair backlog  *)

open Cmdliner

(* ------------------------------------------------------------------ *)
(* Shared arguments                                                    *)
(* ------------------------------------------------------------------ *)

let n_arg =
  Arg.(value & opt int 64 & info [ "n" ] ~docv:"N" ~doc:"Number of boxes.")

let u_arg =
  Arg.(
    value
    & opt float 2.0
    & info [ "u" ] ~docv:"U" ~doc:"Normalised upload capacity of a box.")

let d_arg =
  Arg.(
    value
    & opt float 4.0
    & info [ "d" ] ~docv:"D" ~doc:"Storage capacity of a box, in videos.")

let c_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "c" ] ~docv:"C"
        ~doc:"Stripes per video; defaults to the Theorem 1 recommendation.")

let k_arg =
  Arg.(value & opt int 4 & info [ "k" ] ~docv:"K" ~doc:"Replicas per stripe.")

let m_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "m" ] ~docv:"M" ~doc:"Catalog size; defaults to the storage bound dn/(k).")

let mu_arg =
  Arg.(
    value & opt float 1.2 & info [ "mu" ] ~docv:"MU" ~doc:"Maximal swarm growth per round.")

let duration_arg =
  Arg.(
    value & opt int 30 & info [ "duration" ] ~docv:"T" ~doc:"Video duration in rounds.")

let rounds_arg =
  Arg.(value & opt int 100 & info [ "rounds" ] ~docv:"R" ~doc:"Rounds to simulate.")

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed.")

let scheme_arg =
  let schemes =
    [
      ("permutation", Vod.System.Permutation);
      ("independent", Vod.System.Independent);
      ("round-robin", Vod.System.Round_robin);
      ("full-replication", Vod.System.Full_replication);
    ]
  in
  Arg.(
    value
    & opt (enum schemes) Vod.System.Permutation
    & info [ "scheme" ] ~docv:"SCHEME"
        ~doc:"Allocation scheme: $(b,permutation), $(b,independent), \
              $(b,round-robin) or $(b,full-replication).")

let default_c ~u ~mu =
  if u > 1.0 then min 16 (Vod.Theorem1.recommended_c ~u ~mu) else 2

let build_system ~n ~u ~d ~c ~k ~m ~mu ~duration ~seed ~scheme =
  let c = match c with Some c -> c | None -> default_c ~u ~mu in
  let params = Vod.Params.make ~n ~c ~mu ~duration in
  let fleet = Vod.Box.Fleet.homogeneous ~n ~u ~d in
  let m =
    match m with Some m -> m | None -> Vod.Schemes.max_catalog ~fleet ~c ~k
  in
  let catalog = Vod.Catalog.create ~m ~c in
  let g = Vod.Prng.create ~seed () in
  let alloc =
    match scheme with
    | Vod.System.Permutation -> Vod.Schemes.random_permutation g ~fleet ~catalog ~k
    | Vod.System.Independent -> Vod.Schemes.random_independent g ~fleet ~catalog ~k
    | Vod.System.Round_robin -> Vod.Schemes.round_robin ~fleet ~catalog ~k
    | Vod.System.Full_replication -> Vod.Schemes.full_replication ~fleet ~catalog
  in
  (params, fleet, alloc)

(* [suffixed "a/b.jsonl" ".rep2"] = "a/b.rep2.jsonl": the per-replication
   (or per-cell) trace naming of chaos/battery --obs-out. *)
let suffixed path tag =
  let dir = Filename.dirname path and base = Filename.basename path in
  let with_tag =
    match Filename.extension base with
    | "" -> base ^ tag
    | ext -> Filename.remove_extension base ^ tag ^ ext
  in
  if dir = "." && not (String.length path > 1 && path.[0] = '.' && path.[1] = '/') then with_tag
  else Filename.concat dir with_tag

(* Span recording goes through a process-global sink, so runs being
   traced must not share the process with concurrent runs: callers
   force their replications/cells sequential and say so when --jobs
   asked for more. *)
let warn_obs_sequential jobs =
  match jobs with
  | Some j when j > 1 ->
      Printf.eprintf
        "note: span recording is process-global; running sequentially despite --jobs %d \
         (the output bytes do not depend on --jobs)\n"
        j
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* bounds                                                              *)
(* ------------------------------------------------------------------ *)

let bounds_cmd =
  let run n u d mu u_star =
    if u <= 1.0 then begin
      Printf.printf "u = %g <= 1: below the threshold.\n" u;
      Printf.printf
        "The catalog is bounded by m <= d*c for any stripe count c (negative result);\n";
      Printf.printf "e.g. c=4 gives m <= %d.\n"
        (Vod.Theorem1.max_catalog_below_threshold ~d_max:d ~c:4);
      `Ok ()
    end
    else begin
      let t1 = Vod.Theorem1.derive ~u ~mu ~d () in
      Printf.printf "Theorem 1 (homogeneous, u = %g > 1, mu = %g, d = %g):\n" u mu d;
      Printf.printf "  stripes            c  = %d\n" t1.Vod.Theorem1.c;
      Printf.printf "  expansion margin   nu = %.5f\n" t1.Vod.Theorem1.nu;
      Printf.printf "  effective upload   u' = %.4f\n" t1.Vod.Theorem1.u_eff;
      Printf.printf "  d'                    = %.4f\n" t1.Vod.Theorem1.d_prime;
      Printf.printf "  replication bound  k  = %d\n" t1.Vod.Theorem1.k;
      Printf.printf "  catalog at n=%d       = %d videos (dn/k)\n" n
        (Vod.Theorem1.catalog_size t1 ~n);
      let m = max 1 (int_of_float (d *. float_of_int n) / 8) in
      (match
         Vod.Obstruction_bound.min_k_for_target ~u_eff:t1.Vod.Theorem1.u_eff
           ~nu:t1.Vod.Theorem1.nu ~n ~c:t1.Vod.Theorem1.c ~m ~target_log:(log 0.01)
       with
      | Some k ->
          Printf.printf
            "  numeric union bound: k = %d certifies P(obstruction) < 1%% at m = %d\n" k m
      | None -> Printf.printf "  numeric union bound: no k <= 10000 certifies m = %d\n" m);
      (match u_star with
      | None -> ()
      | Some u_star ->
          let t2 = Vod.Theorem2.derive ~u_star ~mu ~d () in
          Printf.printf "\nTheorem 2 (heterogeneous, u* = %g):\n" u_star;
          Printf.printf "  stripes            c  = %d\n" t2.Vod.Theorem2.c;
          Printf.printf "  expansion margin   nu = %.6f\n" t2.Vod.Theorem2.nu;
          Printf.printf "  replication bound  k  = %d\n" t2.Vod.Theorem2.k;
          Printf.printf "  catalog at n=%d       = %d videos\n" n
            (Vod.Theorem2.catalog_size t2 ~n));
      `Ok ()
    end
  in
  let u_star_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "threshold" ] ~docv:"USTAR" ~doc:"Also derive Theorem 2 at this deficiency threshold u*.")
  in
  Cmd.v
    (Cmd.info "bounds" ~doc:"Derive the paper's parameter prescriptions.")
    Term.(ret (const run $ n_arg $ u_arg $ d_arg $ mu_arg $ u_star_arg))

(* ------------------------------------------------------------------ *)
(* allocate                                                            *)
(* ------------------------------------------------------------------ *)

let allocate_cmd =
  let run n u d c k m mu seed scheme trials save =
    try
      let params, fleet, alloc =
        build_system ~n ~u ~d ~c ~k ~m ~mu ~duration:30 ~seed ~scheme
      in
      let c = params.Vod.Params.c in
      let cat = Vod.Allocation.catalog alloc in
      Printf.printf "allocated %d videos x %d stripes x k replicas on %d boxes\n"
        (Vod.Catalog.videos cat) c n;
      let b = Vod.Balance.measure alloc ~fleet ~c in
      Format.printf "balance: %a@." Vod.Balance.pp b;
      let mn, mx, mean = Vod.Balance.replica_spread alloc in
      Printf.printf "replicas per stripe: min %d, max %d, mean %.2f\n" mn mx mean;
      (match Vod.Allocation.validate alloc ~fleet ~c with
      | Ok () -> print_endline "validation: OK"
      | Error e -> Printf.printf "validation: FAILED (%s)\n" e);
      let g = Vod.Prng.create ~seed:(seed + 1) () in
      let ok = Vod.Probe.survives_battery g ~fleet ~alloc ~c ~trials in
      Printf.printf "adversarial audit (%d random probes + worst-case probes): %s\n"
        trials
        (if ok then "PASS" else "FAIL");
      (match save with
      | None -> ()
      | Some path ->
          Vod.Codec.save alloc ~path;
          Printf.printf "allocation written to %s\n" path);
      `Ok ()
    with Invalid_argument e -> `Error (false, e)
  in
  let trials_arg =
    Arg.(value & opt int 20 & info [ "trials" ] ~doc:"Random adversarial probes.")
  in
  let save_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "save" ] ~docv:"FILE" ~doc:"Write the allocation to FILE (text format).")
  in
  Cmd.v
    (Cmd.info "allocate" ~doc:"Build an allocation; report balance and audit it.")
    Term.(
      ret
        (const run $ n_arg $ u_arg $ d_arg $ c_arg $ k_arg $ m_arg $ mu_arg $ seed_arg
       $ scheme_arg $ trials_arg $ save_arg))

(* ------------------------------------------------------------------ *)
(* simulate                                                            *)
(* ------------------------------------------------------------------ *)

let workload_arg =
  Arg.(
    value
    & opt (enum [ ("zipf", `Zipf); ("uniform", `Uniform); ("flash", `Flash) ]) `Zipf
    & info [ "workload" ] ~docv:"KIND"
        ~doc:"Demand generator: $(b,zipf), $(b,uniform) or $(b,flash).")

let rate_arg =
  Arg.(
    value & opt float 2.0 & info [ "rate" ] ~docv:"RATE" ~doc:"Mean arrivals per round.")

let engine_arg =
  Arg.(
    value
    & opt
        (enum
           [
             ("scratch", Vod.Engine.Scratch);
             ("incremental", Vod.Engine.Incremental);
             ("sharded", Vod.Engine.Sharded);
           ])
        Vod.Engine.Scratch
    & info [ "engine" ] ~docv:"ENGINE"
        ~doc:
          "Per-round matching engine: $(b,scratch) (re-solve the max flow every round), \
           $(b,incremental) (warm-start the solver with the previous round's matching \
           and repair only the delta) or $(b,sharded) (partition the instance along its \
           connected components, solve shards in parallel over --jobs workers and \
           rebuild only the rows churn touched; output is identical for any --jobs).")

let sim_jobs_arg =
  Arg.(
    value & opt int 1
    & info [ "jobs" ] ~docv:"N"
        ~doc:
          "Worker domains for the $(b,sharded) engine's shard solves (OCaml >= 5; the \
           sequential backend ignores extra workers).  Never changes the output, only \
           the wall-clock time.")

let layout_arg =
  Arg.(
    value & flag
    & info [ "layout" ]
        ~doc:
          "Solve each round through the component-clustered layout renumbering \
           (cache-aware vertex ordering).  Results are emitted in original ids and \
           are bit-identical to the direct solve; only the wall-clock time may \
           change.")

(* Names of the solver counters worth a one-line summary after a run. *)
let solver_counters =
  [
    "hk.augmenting_paths";
    "dinic.augmenting_paths";
    "pr.pushes";
    "pr.relabels";
    "matching.fallbacks";
  ]

let simulate_cmd =
  let run n u d c k m mu duration rounds seed scheme workload rate engine jobs layout
      csv load obs_out obs_summary =
    try
      let params, fleet, alloc =
        match load with
        | None -> build_system ~n ~u ~d ~c ~k ~m ~mu ~duration ~seed ~scheme
        | Some path -> (
            match Vod.Codec.load ~path with
            | Error e -> failwith (Printf.sprintf "cannot load %s: %s" path e)
            | Ok alloc ->
                let n = Vod.Allocation.n_boxes alloc in
                let c =
                  Vod.Catalog.stripes_per_video (Vod.Allocation.catalog alloc)
                in
                let params = Vod.Params.make ~n ~c ~mu ~duration in
                let fleet = Vod.Box.Fleet.homogeneous ~n ~u ~d in
                (params, fleet, alloc))
      in
      let recorder =
        if obs_out <> None || obs_summary then begin
          (* start the run from zero so the trace covers exactly this run *)
          Vod.Obs.Registry.reset Vod.Obs.Registry.default;
          let r = Vod.Obs.Span.create_recorder () in
          Vod.Obs.Span.install r;
          Some r
        end
        else None
      in
      let sim =
        Vod.Engine.create ~params ~fleet ~alloc ~policy:Vod.Engine.Continue
          ~matching:engine ~jobs ~layout ()
      in
      let g = Vod.Prng.create ~seed:(seed + 7) () in
      let gen =
        match workload with
        | `Zipf -> Vod.Generators.zipf_arrivals g ~rate ~s:0.9
        | `Uniform -> Vod.Generators.uniform_arrivals g ~rate
        | `Flash -> Vod.Generators.flash_crowd g ~video:0 ~background_rate:rate ()
      in
      let trace = Vod.Trace.create () in
      Vod.Trace.run trace sim ~rounds ~demands_for:gen;
      let metrics = Vod.Trace.summarise trace in
      Format.printf "%a@." Vod.Metrics.pp metrics;
      Printf.printf "peak active stripe requests: %d (mean %.1f)\n"
        metrics.Vod.Metrics.peak_active metrics.Vod.Metrics.mean_active;
      Printf.printf "swarming share: %.1f%%\n" (100.0 *. metrics.Vod.Metrics.cache_share);
      let delays = Vod.Engine.startup_delays sim in
      if Array.length delays > 0 then begin
        let fdelays = Array.map float_of_int delays in
        Printf.printf "start-up delay (rounds until all stripes stream): mean %.2f, max %.0f\n"
          (Vod.Stats.mean fdelays)
          (Array.fold_left Float.max 0.0 fdelays)
      end;
      (match Vod.Engine.matching_stats sim with
      | None -> ()
      | Some s ->
          Printf.printf
            "incremental matcher: %d rounds (%d warm-start, %d full solves), %d seats \
             kept, %d requests repaired\n"
            s.Vod.Bipartite.Incremental.rounds
            s.Vod.Bipartite.Incremental.incremental_solves
            s.Vod.Bipartite.Incremental.full_solves s.Vod.Bipartite.Incremental.reseated
            s.Vod.Bipartite.Incremental.repaired);
      (match metrics.Vod.Metrics.first_failure with
      | None -> print_endline "verdict: every request served on time"
      | Some t -> Printf.printf "verdict: first failed round at t = %d\n" t);
      (match csv with
      | None -> ()
      | Some path ->
          Vod.Trace.save_csv trace ~path;
          Printf.printf "per-round trace written to %s\n" path);
      (match recorder with
      | None -> ()
      | Some r ->
          Vod.Obs.Span.uninstall ();
          (match obs_out with
          | None -> ()
          | Some path ->
              Vod.Obs.Export.save ~registry:Vod.Obs.Registry.default r ~path;
              Printf.printf "observability trace written to %s\n" path);
          if obs_summary then
            Vod.Obs.Report.print_summary
              (Vod.Obs.Report.of_recorder ~registry:Vod.Obs.Registry.default r));
      `Ok ()
    with
    | Invalid_argument e -> `Error (false, e)
    | Failure e -> `Error (false, e)
  in
  let csv_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "csv" ] ~docv:"FILE" ~doc:"Write the per-round trace to FILE as CSV.")
  in
  let load_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "load" ] ~docv:"FILE"
          ~doc:"Load the allocation from FILE (written by allocate --save) instead of \
                generating one; -n/-c/-k/-m/--scheme are then ignored.")
  in
  let obs_out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "obs-out" ] ~docv:"FILE"
          ~doc:"Record an observability trace (spans + metrics) and write it to FILE \
                as JSONL; inspect it with $(b,vodctl obs-report).")
  in
  let obs_summary_arg =
    Arg.(
      value & flag
      & info [ "obs-summary" ]
          ~doc:"Record an observability trace and print the per-phase timing table \
                and metric counters after the run.")
  in
  Cmd.v
    (Cmd.info "simulate" ~doc:"Run a demand workload through the round engine.")
    Term.(
      ret
        (const run $ n_arg $ u_arg $ d_arg $ c_arg $ k_arg $ m_arg $ mu_arg
       $ duration_arg $ rounds_arg $ seed_arg $ scheme_arg $ workload_arg $ rate_arg
       $ engine_arg $ sim_jobs_arg $ layout_arg $ csv_arg $ load_arg $ obs_out_arg
       $ obs_summary_arg))

(* ------------------------------------------------------------------ *)
(* attack                                                              *)
(* ------------------------------------------------------------------ *)

let attack_cmd =
  let run n u d c k m mu duration rounds seed scheme attack =
    try
      let params, fleet, alloc =
        build_system ~n ~u ~d ~c ~k ~m ~mu ~duration ~seed ~scheme
      in
      let sim =
        Vod.Engine.create ~params ~fleet ~alloc ~policy:Vod.Engine.Continue ()
      in
      let g = Vod.Prng.create ~seed:(seed + 13) () in
      let gen =
        match attack with
        | `Uncovered -> Vod.Attacks.uncovered
        | `Tight -> Vod.Attacks.tight_server_set g
        | `Stampede -> Vod.Attacks.stampede ~video:0
      in
      let reports = Vod.Engine.run sim ~rounds ~demands_for:gen in
      let metrics = Vod.Metrics.summarise reports in
      Format.printf "%a@." Vod.Metrics.pp metrics;
      if metrics.Vod.Metrics.total_unserved = 0 then
        print_endline "verdict: the system RESISTS this adversary"
      else begin
        Printf.printf "verdict: DEFEATED (first failure at round %s)\n"
          (match metrics.Vod.Metrics.first_failure with
          | Some t -> string_of_int t
          | None -> "?");
        match Vod.Engine.last_violator sim with
        | None -> ()
        | Some v ->
            Printf.printf
              "Hall certificate: %d requests over %d server boxes with only %d slots\n"
              (List.length v.Vod.Bipartite.requests)
              (List.length v.Vod.Bipartite.servers)
              v.Vod.Bipartite.server_slots
      end;
      `Ok ()
    with Invalid_argument e -> `Error (false, e)
  in
  let attack_arg =
    Arg.(
      value
      & opt
          (enum [ ("uncovered", `Uncovered); ("tight", `Tight); ("stampede", `Stampede) ])
          `Uncovered
      & info [ "attack" ] ~docv:"KIND"
          ~doc:
            "Adversary: $(b,uncovered) (each box demands a video it does not store), \
             $(b,tight) (concentrate on scarce server sets) or $(b,stampede) \
             (everyone on one video, ignoring mu).")
  in
  Cmd.v
    (Cmd.info "attack" ~doc:"Drive an adversarial demand sequence against the system.")
    Term.(
      ret
        (const run $ n_arg $ u_arg $ d_arg $ c_arg $ k_arg $ m_arg $ mu_arg
       $ duration_arg $ rounds_arg $ seed_arg $ scheme_arg $ attack_arg))

(* ------------------------------------------------------------------ *)
(* sweep                                                               *)
(* ------------------------------------------------------------------ *)

let sweep_cmd =
  let run n d c k seed lo hi steps jobs replications sim_rounds =
    if steps < 2 then `Error (false, "need at least 2 steps")
    else if replications < 1 then `Error (false, "need at least 1 replication")
    else begin
      try
        let c = match c with Some c -> c | None -> 2 in
        let jobs =
          match jobs with Some j -> j | None -> Vod.Par.default_jobs ()
        in
        let reps = replications in
        let u_of i =
          lo +. ((hi -. lo) *. float_of_int i /. float_of_int (steps - 1))
        in
        (* One task per (point, replication).  Tasks are independent by
           construction: each derives its own PRNG streams from
           (point, rep) — so results are identical whatever the job
           count or backend — builds its own system, and records into a
           private registry that is absorbed after the join. *)
        let task t =
          let i = t / reps and r = t mod reps in
          let u = u_of i in
          let reg = Vod.Obs.Registry.create () in
          Vod.Obs.Registry.incr (Vod.Obs.Registry.counter reg "sweep.replications");
          let seed' = seed + (1000 * i) + r in
          let g = Vod.Prng.create ~seed:seed' () in
          let fleet = Vod.Box.Fleet.homogeneous ~n ~u ~d in
          let m = n in
          let catalog = Vod.Catalog.create ~m ~c in
          match Vod.Schemes.random_permutation g ~fleet ~catalog ~k with
          | exception Invalid_argument _ -> (`Unallocatable, reg)
          | alloc ->
              let battery =
                Vod.Probe.survives_battery g ~fleet ~alloc ~c ~trials:10
              in
              if not battery then
                Vod.Obs.Registry.incr
                  (Vod.Obs.Registry.counter reg "sweep.battery_failures");
              let params = Vod.Params.make ~n ~c ~mu:1.2 ~duration:30 in
              let sim =
                Vod.Engine.create ~params ~fleet ~alloc
                  ~policy:Vod.Engine.Continue ~matching:Vod.Engine.Incremental ()
              in
              let wg = Vod.Prng.create ~seed:(seed' + 1) () in
              let workload =
                Vod.Generators.uniform_arrivals wg ~rate:(float_of_int n /. 8.0)
              in
              let reports =
                Vod.Engine.run sim ~rounds:sim_rounds ~demands_for:workload
              in
              let metrics = Vod.Metrics.summarise reports in
              Vod.Obs.Registry.add
                (Vod.Obs.Registry.counter reg "sweep.served")
                metrics.Vod.Metrics.total_served;
              Vod.Obs.Registry.add
                (Vod.Obs.Registry.counter reg "sweep.unserved")
                metrics.Vod.Metrics.total_unserved;
              Vod.Obs.Registry.set
                (Vod.Obs.Registry.gauge reg "sweep.peak_active")
                metrics.Vod.Metrics.peak_active;
              (`Ran (battery, metrics.Vod.Metrics.total_unserved), reg)
        in
        let results = Vod.Par.map ~jobs ~f:task (steps * reps) in
        let tbl =
          Vod.Table.create
            ~columns:
              [
                ("u", Vod.Table.Right);
                ("m", Vod.Table.Right);
                ("battery", Vod.Table.Right);
                ("unserved/rep", Vod.Table.Right);
                ("verdict", Vod.Table.Left);
              ]
        in
        for i = 0 to steps - 1 do
          let point = Array.sub results (i * reps) reps in
          let fits =
            Array.for_all (fun (o, _) -> o <> `Unallocatable) point
          in
          if not fits then
            Vod.Table.add_row tbl
              [
                Vod.Table.fmt_float ~decimals:2 (u_of i);
                string_of_int n;
                "-";
                "-";
                "(does not fit)";
              ]
          else begin
            let battery_ok = ref 0 and unserved = ref 0 in
            Array.iter
              (fun (o, _) ->
                match o with
                | `Ran (ok, uns) ->
                    if ok then incr battery_ok;
                    unserved := !unserved + uns
                | `Unallocatable -> ())
              point;
            Vod.Table.add_row tbl
              [
                Vod.Table.fmt_float ~decimals:2 (u_of i);
                string_of_int n;
                Printf.sprintf "%d/%d" !battery_ok reps;
                Vod.Table.fmt_float ~decimals:1
                  (float_of_int !unserved /. float_of_int reps);
                (if !battery_ok = reps && !unserved = 0 then "ok" else "NO");
              ]
          end
        done;
        Vod.Table.print
          ~title:
            (Printf.sprintf
               "Threshold sweep: m = n = %d, c = %d, k = %d (%d reps, %d jobs, %s)"
               n c k reps jobs Vod.Par.backend)
          tbl;
        (* Merge the per-task registries into one aggregate view. *)
        let merged = Vod.Obs.Registry.create () in
        Array.iter (fun (_, reg) -> Vod.Obs.Registry.absorb ~into:merged reg) results;
        let v name =
          Vod.Obs.Registry.counter_value (Vod.Obs.Registry.counter merged name)
        in
        Printf.printf
          "obs: %d replications, %d served, %d unserved, %d battery failures, peak \
           active %d\n"
          (v "sweep.replications") (v "sweep.served") (v "sweep.unserved")
          (v "sweep.battery_failures")
          (Vod.Obs.Registry.gauge_value
             (Vod.Obs.Registry.gauge merged "sweep.peak_active"));
        `Ok ()
      with Invalid_argument e | Failure e -> `Error (false, e)
    end
  in
  let lo_arg = Arg.(value & opt float 0.5 & info [ "from" ] ~docv:"LO" ~doc:"Lowest u.") in
  let hi_arg = Arg.(value & opt float 3.0 & info [ "to" ] ~docv:"HI" ~doc:"Highest u.") in
  let steps_arg = Arg.(value & opt int 9 & info [ "steps" ] ~doc:"Sweep points.") in
  let jobs_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "jobs"; "j" ] ~docv:"J"
          ~doc:
            "Worker count for running sweep points in parallel (defaults to the \
             backend's recommendation; the sequential fallback on OCaml 4 uses 1).  \
             Results are independent of $(docv).")
  in
  let replications_arg =
    Arg.(
      value
      & opt int 3
      & info [ "replications" ] ~docv:"R"
          ~doc:
            "Independent replications per sweep point, each with its own derived \
             PRNG stream (seed + 1000*point + rep).")
  in
  let sim_rounds_arg =
    Arg.(
      value
      & opt int 40
      & info [ "rounds" ] ~docv:"R"
          ~doc:"Rounds of uniform-arrival simulation per replication.")
  in
  Cmd.v
    (Cmd.info "sweep"
       ~doc:
         "Sweep the upload capacity across the threshold (replications run in \
          parallel).")
    Term.(
      ret
        (const run $ n_arg $ d_arg $ c_arg $ k_arg $ seed_arg $ lo_arg $ hi_arg
       $ steps_arg $ jobs_arg $ replications_arg $ sim_rounds_arg))

(* ------------------------------------------------------------------ *)
(* plan                                                                *)
(* ------------------------------------------------------------------ *)

let plan_cmd =
  let run n u d mu =
    if u <= 1.0 then
      `Error
        ( false,
          Printf.sprintf
            "u = %g <= 1 is below the threshold: only constant catalogs m <= d*c exist" u )
    else begin
      let t1 = Vod.Theorem1.derive ~u ~mu ~d () in
      Printf.printf "plan for n = %d boxes (u = %g, d = %g, mu = %g):\n\n" n u d mu;
      Printf.printf "guaranteed (Theorem 1): c = %d, k = %d -> %d videos\n"
        t1.Vod.Theorem1.c t1.Vod.Theorem1.k
        (Vod.Theorem1.catalog_size t1 ~n);
      let dn = d *. float_of_int n in
      let certify =
        let rec go k =
          if k > 5000 then None
          else begin
            let m = max 1 (int_of_float (dn /. float_of_int k)) in
            let lp =
              Vod.Obstruction_bound.log_union_bound ~u_eff:t1.Vod.Theorem1.u_eff
                ~nu:t1.Vod.Theorem1.nu ~n ~c:t1.Vod.Theorem1.c ~k ~m
            in
            if lp <= log 0.01 then Some (k, m) else go (k + max 1 (k / 4))
          end
        in
        go 1
      in
      (match certify with
      | Some (k, m) ->
          Printf.printf "certified (union bound, P < 1%%): k = %d -> %d videos\n" k m
      | None -> print_endline "certified (union bound): no k <= 5000 certifies this n");
      let fleet = Vod.Box.Fleet.homogeneous ~n ~u ~d in
      let c = min 16 t1.Vod.Theorem1.c in
      let rec first_k k =
        if k > 12 then None
        else begin
          let m = Vod.Schemes.max_catalog ~fleet ~c ~k in
          let ok =
            List.for_all
              (fun seed ->
                let g = Vod.Prng.create ~seed () in
                let catalog = Vod.Catalog.create ~m ~c in
                let alloc = Vod.Schemes.random_permutation g ~fleet ~catalog ~k in
                Vod.Probe.survives_battery g ~fleet ~alloc ~c ~trials:10)
              [ 1; 2; 3 ]
          in
          if ok then Some (k, m) else first_k (k + 1)
        end
      in
      (match first_k 1 with
      | Some (k, m) ->
          Printf.printf "empirical (adversarial battery, 3 seeds): k = %d -> %d videos\n" k m
      | None -> print_endline "empirical: nothing up to k = 12 survives the battery");
      `Ok ()
    end
  in
  Cmd.v
    (Cmd.info "plan" ~doc:"Capacity planning: guaranteed / certified / empirical catalog sizes.")
    Term.(ret (const run $ n_arg $ u_arg $ d_arg $ mu_arg))

(* ------------------------------------------------------------------ *)
(* check                                                               *)
(* ------------------------------------------------------------------ *)

let check_cmd =
  let run seed instances scenarios rounds repro_dir replay =
    match replay with
    | Some path -> (
        match Vod.Check.Fuzz.replay ~path with
        | Ok matched ->
            Printf.printf "repro %s: all solvers agree (matched = %d); bug no \
                           longer reproduces\n"
              path matched;
            `Ok ()
        | Error detail -> `Error (false, Printf.sprintf "repro %s: %s" path detail))
    | None when instances < 0 || scenarios < 0 || rounds < 1 ->
        `Error (false, "check: --instances and --scenarios must be >= 0, --rounds >= 1")
    | None ->
        let summary =
          Vod.Check.Fuzz.run ~seed ~instances ~scenarios ~rounds ?repro_dir ()
        in
        Printf.printf
          "differential check (seed %d): %d bipartite instances x 17 solvers, %d \
           scenarios x 9 engines (3 schedulers + 2 incremental + 2 sharded + 2 layout)\n"
          seed summary.Vod.Check.Fuzz.instances_checked
          summary.Vod.Check.Fuzz.scenarios_checked;
        Printf.printf
          "engine failure rounds with independently confirmed Hall certificates: %d\n"
          summary.Vod.Check.Fuzz.failure_rounds_certified;
        Printf.printf "obs: %s\n"
          (Vod.Obs.Report.one_line Vod.Obs.Registry.default
             ~names:("fuzz.cases" :: "fuzz.shrink_steps" :: solver_counters));
        (match summary.Vod.Check.Fuzz.failures with
        | [] ->
            print_endline "verdict: all oracles agree";
            `Ok ()
        | failures ->
            List.iter
              (fun f ->
                Printf.printf "FAILURE [%s] seed=%d index=%d: %s%s\n"
                  f.Vod.Check.Fuzz.kind f.Vod.Check.Fuzz.seed f.Vod.Check.Fuzz.index
                  f.Vod.Check.Fuzz.detail
                  (match f.Vod.Check.Fuzz.repro_path with
                  | Some p -> Printf.sprintf " (minimised repro: %s)" p
                  | None -> ""))
              failures;
            `Error (false, Printf.sprintf "%d oracle failure(s)" (List.length failures)))
  in
  let instances_arg =
    Arg.(
      value & opt int 1000
      & info [ "instances" ] ~docv:"N"
          ~doc:"Random bipartite instances for the cross-solver oracle.")
  in
  let scenarios_arg =
    Arg.(
      value & opt int 12
      & info [ "scenarios" ] ~docv:"N"
          ~doc:"Random simulator scenarios for the cross-scheduler oracle.")
  in
  let check_rounds_arg =
    Arg.(
      value & opt int 30
      & info [ "rounds" ] ~docv:"R" ~doc:"Rounds per simulator scenario.")
  in
  let repro_dir_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "repro-dir" ] ~docv:"DIR"
          ~doc:"Write minimised failing instances to DIR as repro files.")
  in
  let replay_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "replay" ] ~docv:"FILE"
          ~doc:"Re-check a single repro FILE instead of fuzzing.")
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Differential verification: cross-solver and cross-scheduler oracles over \
          seeded random instances, with failure shrinking and repro files.")
    Term.(
      ret
        (const run $ seed_arg $ instances_arg $ scenarios_arg $ check_rounds_arg
       $ repro_dir_arg $ replay_arg))

(* ------------------------------------------------------------------ *)
(* chaos                                                               *)
(* ------------------------------------------------------------------ *)

let chaos_cmd =
  let run path rounds seed replications jobs out slo_out obs_out obs_summary =
    if replications < 1 then `Error (false, "need at least 1 replication")
    else
      match Vod.Fault.Scenario.load ~path with
      | Error e -> `Error (false, e)
      | Ok scenario -> (
          let scenario =
            match seed with
            | Some seed -> { scenario with Vod.Fault.Scenario.seed }
            | None -> scenario
          in
          let obs_on = obs_out <> None || obs_summary in
          let obs_traces = ref [] in
          let result =
            if obs_on then begin
              (* per-replication recorder, sequential (see
                 warn_obs_sequential); seeds match run_many's formula so
                 the verdict streams are the ones a plain run emits *)
              warn_obs_sequential jobs;
              match Vod.Fault.Chaos.validate scenario with
              | Error _ as err -> err
              | Ok () ->
                  let rec go i acc =
                    if i = replications then Ok (List.rev acc)
                    else begin
                      Vod.Obs.Registry.reset Vod.Obs.Registry.default;
                      let r = Vod.Obs.Span.create_recorder () in
                      Vod.Obs.Span.install r;
                      let res =
                        Vod.Fault.Chaos.run ?rounds
                          ~seed:(scenario.Vod.Fault.Scenario.seed + (1000 * i))
                          scenario
                      in
                      Vod.Obs.Span.uninstall ();
                      match res with
                      | Error _ as err -> err
                      | Ok o ->
                          (match obs_out with
                          | None -> ()
                          | Some base ->
                              let p =
                                if replications = 1 then base
                                else suffixed base (Printf.sprintf ".rep%d" i)
                              in
                              Vod.Obs.Export.save ~registry:Vod.Obs.Registry.default r
                                ~path:p;
                              Printf.eprintf "observability trace (rep %d) written to %s\n"
                                i p);
                          if obs_summary then
                            obs_traces :=
                              ( i,
                                Vod.Obs.Report.of_recorder
                                  ~registry:Vod.Obs.Registry.default r )
                              :: !obs_traces;
                          go (i + 1) (o :: acc)
                    end
                  in
                  go 0 []
            end
            else if replications = 1 then
              Result.map (fun o -> [ o ]) (Vod.Fault.Chaos.run ?rounds scenario)
            else Vod.Fault.Chaos.run_many ?rounds ?jobs ~replications scenario
          in
          match result with
          | Error e -> `Error (false, e)
          | Ok outcomes ->
              (* The JSONL stream (replications concatenated in order) is
                 the machine-readable verdict: byte-identical for the
                 same scenario/seed at any --jobs value. *)
              let jsonl =
                String.concat "" (List.map (fun o -> o.Vod.Fault.Chaos.jsonl) outcomes)
              in
              (match out with
              | None -> print_string jsonl
              | Some path ->
                  Out_channel.with_open_text path (fun oc ->
                      Out_channel.output_string oc jsonl);
                  Printf.eprintf "chaos verdict stream written to %s\n" path);
              (match slo_out with
              | None -> ()
              | Some path ->
                  (* vod-slo/1, replications concatenated in order: the
                     same byte-identity contract as the chaos stream *)
                  let slo =
                    String.concat ""
                      (List.map (fun o -> o.Vod.Fault.Chaos.slo_jsonl) outcomes)
                  in
                  Out_channel.with_open_text path (fun oc ->
                      Out_channel.output_string oc slo);
                  Printf.eprintf "SLO verdict stream written to %s\n" path);
              List.iter
                (fun (i, trace) ->
                  Printf.printf "--- observability summary: replication %d ---\n" i;
                  Vod.Obs.Report.print_summary trace)
                (List.rev !obs_traces);
              List.iteri
                (fun i o ->
                  Printf.eprintf
                    "rep %d (seed %d): %s; %d transfers (%d completed, %d aborted, %d \
                     retries), %d replicas installed, %d unrepairable, time to full \
                     replication %s, min online %d, unserved %d, faulted %d\n"
                    i o.Vod.Fault.Chaos.seed
                    (if Vod.Fault.Chaos.verdict_ok o then "RECOVERED" else "NOT RECOVERED")
                    o.Vod.Fault.Chaos.stats.Vod.Fault.Mend.started
                    o.Vod.Fault.Chaos.stats.Vod.Fault.Mend.completed
                    o.Vod.Fault.Chaos.stats.Vod.Fault.Mend.aborted
                    o.Vod.Fault.Chaos.stats.Vod.Fault.Mend.retries
                    o.Vod.Fault.Chaos.stats.Vod.Fault.Mend.installed
                    o.Vod.Fault.Chaos.unrepairable
                    (match o.Vod.Fault.Chaos.time_to_full_replication with
                    | -1 -> "never"
                    | t -> Printf.sprintf "%d rounds" t)
                    o.Vod.Fault.Chaos.min_online o.Vod.Fault.Chaos.total_unserved
                    o.Vod.Fault.Chaos.total_faulted)
                outcomes;
              if List.for_all Vod.Fault.Chaos.verdict_ok outcomes then `Ok ()
              else
                `Error
                  ( false,
                    Printf.sprintf "%d of %d replications did not recover"
                      (List.length
                         (List.filter (fun o -> not (Vod.Fault.Chaos.verdict_ok o)) outcomes))
                      (List.length outcomes) ))
  in
  let scenario_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"SCENARIO" ~doc:"Chaos scenario file (see examples/crash_rejoin.scn).")
  in
  let chaos_rounds_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "rounds" ] ~docv:"R" ~doc:"Override the scenario's round count.")
  in
  let chaos_seed_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "seed" ] ~docv:"SEED" ~doc:"Override the scenario's seed.")
  in
  let replications_arg =
    Arg.(
      value
      & opt int 1
      & info [ "replications" ] ~docv:"N"
          ~doc:"Independent replications (replication $(i,i) runs at seed + 1000*i).")
  in
  let jobs_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "jobs"; "j" ] ~docv:"J"
          ~doc:"Workers for parallel replications; the output is independent of $(docv).")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"FILE"
          ~doc:"Write the JSONL verdict stream to FILE instead of stdout.")
  in
  let slo_out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "slo-out" ] ~docv:"FILE"
          ~doc:
            "Write the vod-slo/1 burn-rate stream (SLOs compiled from the scenario's \
             kpi budgets) to FILE; byte-identical at any --jobs, like the chaos \
             stream.")
  in
  let obs_out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "obs-out" ] ~docv:"FILE"
          ~doc:
            "Record an observability trace per replication and write it to FILE \
             (replication $(i,i) goes to FILE with a .rep$(i,i) suffix when there are \
             several, so parallel runs never interleave writes); forces sequential \
             replications.")
  in
  let obs_summary_arg =
    Arg.(
      value & flag
      & info [ "obs-summary" ]
          ~doc:
            "Record observability traces and print a per-phase timing table per \
             replication after the verdict stream; forces sequential replications.")
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Run a named chaos scenario: inject the scripted faults, let the \
          bandwidth-aware repair controller self-heal, and emit a deterministic JSONL \
          verdict stream (exit 0 iff every replication recovered).")
    Term.(
      ret
        (const run $ scenario_arg $ chaos_rounds_arg $ chaos_seed_arg $ replications_arg
       $ jobs_arg $ out_arg $ slo_out_arg $ obs_out_arg $ obs_summary_arg))

(* ------------------------------------------------------------------ *)
(* serve                                                               *)
(* ------------------------------------------------------------------ *)

let serve_cmd =
  let run scn rounds seed arrivals policy queue_cap retry_budget replications jobs out
      slo_out obs_out obs_summary =
    if replications < 1 then `Error (false, "need at least 1 replication")
    else
      let scenario_res =
        match scn with
        | Some path -> Vod.Fault.Scenario.load ~path
        | None -> Ok Vod.Fault.Scenario.default
      in
      match scenario_res with
      | Error e -> `Error (false, e)
      | Ok scenario -> (
          let scenario =
            match seed with
            | Some seed -> { scenario with Vod.Fault.Scenario.seed }
            | None -> scenario
          in
          match Vod.Serve.arrivals_of_name arrivals with
          | Error e -> `Error (false, e)
          | Ok arrivals -> (
              match Vod.Serve.shed_policy_of_name policy with
              | Error e -> `Error (false, e)
              | Ok shed_policy -> (
                  match
                    Vod.Serve.config ?queue_cap ?retry_budget ~shed_policy ()
                  with
                  | exception Invalid_argument e -> `Error (false, e)
                  | config -> (
                      let obs_on = obs_out <> None || obs_summary in
                      let obs_traces = ref [] in
                      let result =
                        if obs_on then begin
                          (* per-replication recorder, sequential (see
                             warn_obs_sequential); seeds follow run_many's
                             formula so the streams match a plain run *)
                          warn_obs_sequential jobs;
                          match Vod.Serve.validate scenario with
                          | Error _ as err -> err
                          | Ok () ->
                              let rec go i acc =
                                if i = replications then Ok (List.rev acc)
                                else begin
                                  Vod.Obs.Registry.reset Vod.Obs.Registry.default;
                                  let r = Vod.Obs.Span.create_recorder () in
                                  Vod.Obs.Span.install r;
                                  let res =
                                    Vod.Serve.run ?rounds
                                      ~seed:(scenario.Vod.Fault.Scenario.seed + (1000 * i))
                                      ~config ~arrivals scenario
                                  in
                                  Vod.Obs.Span.uninstall ();
                                  match res with
                                  | Error _ as err -> err
                                  | Ok o ->
                                      (match obs_out with
                                      | None -> ()
                                      | Some base ->
                                          let p =
                                            if replications = 1 then base
                                            else suffixed base (Printf.sprintf ".rep%d" i)
                                          in
                                          Vod.Obs.Export.save
                                            ~registry:Vod.Obs.Registry.default r ~path:p;
                                          Printf.eprintf
                                            "observability trace (rep %d) written to %s\n" i
                                            p);
                                      if obs_summary then
                                        obs_traces :=
                                          ( i,
                                            Vod.Obs.Report.of_recorder
                                              ~registry:Vod.Obs.Registry.default r )
                                          :: !obs_traces;
                                      go (i + 1) (o :: acc)
                                end
                              in
                              go 0 []
                        end
                        else if replications = 1 then
                          Result.map
                            (fun o -> [ o ])
                            (Vod.Serve.run ?rounds ~config ~arrivals scenario)
                        else
                          Vod.Serve.run_many ?rounds ?jobs ~config ~arrivals ~replications
                            scenario
                      in
                      match result with
                      | Error e -> `Error (false, e)
                      | Ok outcomes ->
                          (* vod-serve/1, replications concatenated in order:
                             byte-identical at any --jobs value *)
                          let jsonl =
                            String.concat ""
                              (List.map (fun o -> o.Vod.Serve.jsonl) outcomes)
                          in
                          (match out with
                          | None -> print_string jsonl
                          | Some path ->
                              Out_channel.with_open_text path (fun oc ->
                                  Out_channel.output_string oc jsonl);
                              Printf.eprintf "serve verdict stream written to %s\n" path);
                          (match slo_out with
                          | None -> ()
                          | Some path ->
                              let slo =
                                String.concat ""
                                  (List.map (fun o -> o.Vod.Serve.slo_jsonl) outcomes)
                              in
                              Out_channel.with_open_text path (fun oc ->
                                  Out_channel.output_string oc slo);
                              Printf.eprintf "SLO verdict stream written to %s\n" path);
                          List.iter
                            (fun (i, trace) ->
                              Printf.printf
                                "--- observability summary: replication %d ---\n" i;
                              Vod.Obs.Report.print_summary trace)
                            (List.rev !obs_traces);
                          List.iteri
                            (fun i o ->
                              let t = o.Vod.Serve.totals in
                              Printf.eprintf
                                "rep %d (seed %d): %s; %d arrivals (%d flash), %d \
                                 admitted, %d completed, %d shed, %d rejected, %d \
                                 retries over %d sessions, %d interrupted, %d expired, \
                                 %d helpers drafted, max queue %d, %d degraded rounds, \
                                 unserved %d\n"
                                i o.Vod.Serve.seed
                                ((if Vod.Serve.verdict_ok o then "GRACEFUL" else "STALLED")
                                ^
                                if Vod.Serve.slo_breached o then " (SLO BREACH)" else "")
                                t.Vod.Serve.arrivals t.Vod.Serve.flash_arrivals
                                t.Vod.Serve.admitted t.Vod.Serve.completed t.Vod.Serve.shed
                                t.Vod.Serve.rejected t.Vod.Serve.retries
                                t.Vod.Serve.retry_sessions t.Vod.Serve.interrupted
                                t.Vod.Serve.expired t.Vod.Serve.helpers_drafted
                                t.Vod.Serve.max_queue t.Vod.Serve.degraded_rounds
                                t.Vod.Serve.total_unserved)
                            outcomes;
                          let bad o =
                            (not (Vod.Serve.verdict_ok o)) || Vod.Serve.slo_breached o
                          in
                          if not (List.exists bad outcomes) then `Ok ()
                          else
                            `Error
                              ( false,
                                Printf.sprintf
                                  "%d of %d replications stalled admitted sessions, \
                                   blew the retry budget or breached an SLO"
                                  (List.length (List.filter bad outcomes))
                                  (List.length outcomes) )))))
  in
  let scn_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "scn" ] ~docv:"FILE"
          ~doc:
            "Scenario file driving faults, helpers and kpi budgets (default: the \
             built-in crash/rejoin scenario).")
  in
  let serve_rounds_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "rounds" ] ~docv:"R" ~doc:"Override the scenario's round count.")
  in
  let serve_seed_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "seed" ] ~docv:"SEED" ~doc:"Override the scenario's seed.")
  in
  let arrivals_arg =
    Arg.(
      value & opt string "scenario"
      & info [ "arrivals" ] ~docv:"SPEC"
          ~doc:
            "Arrival process: $(b,scenario) (the scenario's rate), $(b,poisson:RATE) or \
             $(b,zipf:RATE:S).")
  in
  let policy_arg =
    Arg.(
      value & opt string "newest-first"
      & info [ "policy" ] ~docv:"POLICY"
          ~doc:
            "Overload shed policy: $(b,newest-first), $(b,lowest-priority) or \
             $(b,helper-first) (draft standby helpers before shedding).")
  in
  let queue_cap_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "queue-cap" ] ~docv:"N" ~doc:"Bounded arrival-queue length (default 256).")
  in
  let retry_budget_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "retry-budget" ] ~docv:"N"
          ~doc:"Max retries per session before it is dropped (default 3).")
  in
  let replications_arg =
    Arg.(
      value & opt int 1
      & info [ "replications" ] ~docv:"N"
          ~doc:"Independent replications (replication $(i,i) runs at seed + 1000*i).")
  in
  let jobs_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "jobs"; "j" ] ~docv:"J"
          ~doc:"Workers for parallel replications; the output is independent of $(docv).")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"FILE"
          ~doc:"Write the vod-serve/1 JSONL stream to FILE instead of stdout.")
  in
  let slo_out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "slo-out" ] ~docv:"FILE"
          ~doc:
            "Write the vod-slo/1 burn-rate stream (stall SLO plus SLOs compiled from \
             the scenario's kpi budgets) to FILE.")
  in
  let obs_out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "obs-out" ] ~docv:"FILE"
          ~doc:
            "Record an observability trace per replication and write it to FILE \
             (.rep$(i,i) suffix when there are several); forces sequential \
             replications.")
  in
  let obs_summary_arg =
    Arg.(
      value & flag
      & info [ "obs-summary" ]
          ~doc:
            "Record observability traces and print a per-phase timing table per \
             replication; forces sequential replications.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the event-driven service mode: continuous arrivals through admission \
          control (token bucket + measured headroom + the paper's swarm-growth bound), \
          bounded-queue backpressure, deadline-aware retry/recovery, and policy-driven \
          shedding under overload — while the scenario's fault plan fires against the \
          running service.  Emits a deterministic vod-serve/1 JSONL stream; exit 0 iff \
          every replication kept admitted sessions stall-free, within retry budget and \
          inside its SLOs.")
    Term.(
      ret
        (const run $ scn_arg $ serve_rounds_arg $ serve_seed_arg $ arrivals_arg
       $ policy_arg $ queue_cap_arg $ retry_budget_arg $ replications_arg $ jobs_arg
       $ out_arg $ slo_out_arg $ obs_out_arg $ obs_summary_arg))

(* ------------------------------------------------------------------ *)
(* battery                                                             *)
(* ------------------------------------------------------------------ *)

let battery_cmd =
  let run paths configs jobs out obs_out obs_summary =
    let collect path =
      if Sys.is_directory path then
        Sys.readdir path |> Array.to_list
        |> List.filter (fun f -> Filename.check_suffix f ".scn")
        |> List.sort String.compare
        |> List.map (Filename.concat path)
      else [ path ]
    in
    match List.concat_map collect paths with
    | exception Sys_error e -> `Error (false, e)
    | [] -> `Error (false, "no .scn scenario files found")
    | files -> (
        let rec load_all acc = function
          | [] -> Ok (List.rev acc)
          | f :: rest -> (
              match Vod.Fault.Scenario.load ~path:f with
              | Ok s -> load_all (s :: acc) rest
              | Error _ as e -> e)
        in
        let rec parse_configs acc = function
          | [] -> Ok (List.rev acc)
          | name :: rest -> (
              match Vod.Fault.Chaos.config_of_name name with
              | Ok c -> parse_configs (c :: acc) rest
              | Error _ as e -> e)
        in
        let config_names =
          String.split_on_char ',' configs |> List.map String.trim
          |> List.filter (fun s -> s <> "")
        in
        match (load_all [] files, parse_configs [] config_names) with
        | Error e, _ | _, Error e -> `Error (false, e)
        | Ok scenarios, Ok configs -> (
            let obs_on = obs_out <> None || obs_summary in
            let obs_traces = ref [] in
            let wrap_cell =
              if not obs_on then None
              else begin
                (* per-cell recorder; Battery.run goes sequential when a
                   wrapper is present, so trace files never interleave *)
                warn_obs_sequential jobs;
                Some
                  (fun ~scenario ~config thunk ->
                    Vod.Obs.Registry.reset Vod.Obs.Registry.default;
                    let r = Vod.Obs.Span.create_recorder () in
                    Vod.Obs.Span.install r;
                    let cell = thunk () in
                    Vod.Obs.Span.uninstall ();
                    let label =
                      Printf.sprintf "%s.%s" scenario.Vod.Fault.Scenario.name
                        config.Vod.Fault.Chaos.label
                    in
                    (match obs_out with
                    | None -> ()
                    | Some base ->
                        let p = suffixed base ("." ^ label) in
                        Vod.Obs.Export.save ~registry:Vod.Obs.Registry.default r ~path:p;
                        Printf.eprintf "observability trace (%s) written to %s\n" label p);
                    if obs_summary then
                      obs_traces :=
                        ( label,
                          Vod.Obs.Report.of_recorder ~registry:Vod.Obs.Registry.default r )
                        :: !obs_traces;
                    cell)
              end
            in
            match Vod.Battery.Battery.run ?jobs ?wrap_cell ~configs scenarios with
            | Error e -> `Error (false, e)
            | Ok report ->
                (* scorecard (machine-readable) on stdout or --out; the
                   human-readable ranking goes to stderr so piping the
                   JSONL stays clean *)
                (match out with
                | None -> print_string report.Vod.Battery.Battery.jsonl
                | Some path ->
                    Out_channel.with_open_text path (fun oc ->
                        Out_channel.output_string oc report.Vod.Battery.Battery.jsonl);
                    Printf.eprintf "scorecard written to %s\n" path);
                List.iter
                  (fun (label, trace) ->
                    Printf.printf "--- observability summary: %s ---\n" label;
                    Vod.Obs.Report.print_summary trace)
                  (List.rev !obs_traces);
                prerr_string report.Vod.Battery.Battery.table;
                if Vod.Battery.Battery.ok report then `Ok ()
                else
                  `Error
                    ( false,
                      Printf.sprintf "%d of %d cells breached their KPI budgets"
                        report.Vod.Battery.Battery.breached
                        (List.length report.Vod.Battery.Battery.cells) )))
  in
  let paths_arg =
    Arg.(
      non_empty
      & pos_all string []
      & info [] ~docv:"PATH"
          ~doc:"Scenario files, or directories whose .scn files are run in name order.")
  in
  let configs_arg =
    Arg.(
      value
      & opt string "scratch,incremental"
      & info [ "configs" ] ~docv:"LIST"
          ~doc:
            "Comma-separated engine configs forming the matrix columns: $(b,scratch), \
             $(b,incremental), $(b,sticky), $(b,prefer-cache), $(b,balance-load), \
             $(b,round-robin).")
  in
  let jobs_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "jobs"; "j" ] ~docv:"J"
          ~doc:"Workers for parallel cells; the scorecard is byte-identical at any $(docv).")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"FILE"
          ~doc:"Write the vod-scorecard/1 JSONL to FILE instead of stdout.")
  in
  let obs_out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "obs-out" ] ~docv:"FILE"
          ~doc:
            "Record an observability trace per cell and write it to FILE with a \
             .$(i,scenario).$(i,config) suffix (one file per cell, so nothing \
             interleaves); forces sequential cells.")
  in
  let obs_summary_arg =
    Arg.(
      value & flag
      & info [ "obs-summary" ]
          ~doc:
            "Record observability traces and print a per-phase timing table per cell \
             after the scorecard; forces sequential cells.")
  in
  Cmd.v
    (Cmd.info "battery"
       ~doc:
         "Run a scenario battery: every (scenario x engine config) cell through the \
          chaos runner, ranked into a deterministic KPI scorecard (exit 0 iff no cell \
          breaches its declared KPI budgets).")
    Term.(
      ret
        (const run $ paths_arg $ configs_arg $ jobs_arg $ out_arg $ obs_out_arg
       $ obs_summary_arg))

(* ------------------------------------------------------------------ *)
(* obs-report                                                          *)
(* ------------------------------------------------------------------ *)

let obs_report_cmd =
  let run path validate flame =
    match Vod.Obs.Report.load ~path with
    | Error e -> `Error (false, Printf.sprintf "%s: %s" path e)
    | Ok trace when flame ->
        (* collapsed stacks only: pipe into flamegraph.pl / speedscope *)
        if trace.Vod.Obs.Report.dropped > 0 then
          Printf.eprintf
            "warning: %d spans were evicted from the ring; the flamegraph undercounts\n"
            trace.Vod.Obs.Report.dropped;
        print_string (Vod.Obs.Flame.folded trace.Vod.Obs.Report.spans);
        `Ok ()
    | Ok trace -> (
        (* eviction is lossy but structurally legal: warn, never fail *)
        if trace.Vod.Obs.Report.dropped > 0 then
          Printf.eprintf
            "warning: %d spans were evicted from the ring (capacity overflow); the \
             trace is truncated\n"
            trace.Vod.Obs.Report.dropped;
        match Vod.Obs.Report.validate trace with
        | Error e when validate -> `Error (false, Printf.sprintf "%s: INVALID: %s" path e)
        | verdict ->
            if validate then
              Printf.printf "%s: valid (%d spans, %d counters, %d histograms)\n" path
                (List.length trace.Vod.Obs.Report.spans)
                (List.length trace.Vod.Obs.Report.counters)
                (List.length trace.Vod.Obs.Report.hists)
            else
              (* surface structural problems even without --validate, but
                 keep summarising: the table is still informative *)
              (match verdict with
              | Ok () -> ()
              | Error e -> Printf.printf "warning: structural check failed: %s\n" e);
            Vod.Obs.Report.print_summary trace;
            `Ok ())
  in
  let file_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"FILE" ~doc:"JSONL trace written by simulate --obs-out.")
  in
  let validate_arg =
    Arg.(
      value & flag
      & info [ "validate" ]
          ~doc:"Check the trace's structural invariants (unique span ids, stop >= \
                start, parent containment, histogram totals) and fail on violation.  \
                Ring eviction (nonzero dropped_spans) only warns: a truncated trace \
                is lossy, not broken.")
  in
  let flame_arg =
    Arg.(
      value & flag
      & info [ "flame" ]
          ~doc:"Print the trace's spans as collapsed stacks (one \
                $(b,stack self_ns) line per stack, flamegraph.pl/speedscope input) \
                instead of the summary.")
  in
  Cmd.v
    (Cmd.info "obs-report"
       ~doc:"Validate and summarise an observability trace (JSONL from simulate \
             --obs-out): per-phase timing table, counters, histograms, or collapsed \
             flamegraph stacks with --flame.")
    Term.(ret (const run $ file_arg $ validate_arg $ flame_arg))

(* ------------------------------------------------------------------ *)
(* top                                                                 *)
(* ------------------------------------------------------------------ *)

let top_cmd =
  let module Ts = Vod.Obs.Timeseries in
  let module Slo = Vod.Obs.Slo in
  let spark_width = 48 in
  let stat_window = 100 in
  let render ~title ~round ~total ~ts ~series_list ~slos ~footer =
    let b = Buffer.create 2048 in
    let rule = String.make 78 '-' ^ "\n" in
    Buffer.add_string b (Printf.sprintf "%s  round %d/%d\n" title round total);
    Buffer.add_string b rule;
    Buffer.add_string b
      (Printf.sprintf "%-14s %7s  %10s  %8s  %7s  last %d rounds\n" "series" "last"
         "w100 mean" "w100 p95" "max" spark_width);
    List.iter
      (fun name ->
        let s = Ts.series ts name in
        Buffer.add_string b
          (Printf.sprintf "%-14s %7d  %10.1f  %8.0f  %7d  %s\n" name (Ts.last s)
             (Ts.window_mean s ~window:stat_window)
             (Ts.window_percentile s ~window:stat_window 95.0)
             (Ts.window_max s ~window:stat_window)
             (Vod.Obs.Dash.sparkline (Ts.recent s spark_width))))
      series_list;
    if slos <> [] then begin
      Buffer.add_string b rule;
      List.iter
        (fun ev ->
          let sp = Slo.spec_of ev in
          Buffer.add_string b
            (Printf.sprintf "slo %-11s %-8s  fast %6.2fx  slow %6.2fx  (target %.4f)\n"
               sp.Slo.sp_name
               (Slo.state_name (Slo.state ev))
               (Slo.burn ev `Fast) (Slo.burn ev `Slow) sp.Slo.sp_target))
        slos
    end;
    if footer <> [] then begin
      Buffer.add_string b rule;
      List.iter (fun l -> Buffer.add_string b (l ^ "\n")) footer
    end;
    Buffer.contents b
  in
  let run scenario n u d c k m mu duration rounds seed scheme workload rate engine
      interval =
    if interval < 1 then `Error (false, "--interval must be >= 1")
    else begin
      let tty = Vod.Obs.Dash.isatty () in
      let first = ref true in
      (* live redraw only on a terminal; otherwise just the final frame,
         so redirected output stays a readable snapshot *)
      let draw ~final frame =
        if tty then begin
          Vod.Obs.Dash.display ~tty:true ~first:!first frame;
          first := false
        end
        else if final then Vod.Obs.Dash.display ~tty:false ~first:false frame
      in
      match scenario with
      | Some path -> (
          (* chaos mode: scenario-defined rounds/seed; the dashboard
             rides the runner's on_round tick *)
          match Vod.Fault.Scenario.load ~path with
          | Error e -> `Error (false, e)
          | Ok s -> (
              let names = Vod.Telemetry.series_names @ [ "under"; "in_flight" ] in
              let ts = Ts.create () in
              List.iter (fun nm -> ignore (Ts.series ts nm)) names;
              let total = s.Vod.Fault.Scenario.rounds in
              let title =
                Printf.sprintf "vodctl top — chaos %s" s.Vod.Fault.Scenario.name
              in
              let last_slos = ref [] and last_footer = ref [] in
              let on_round (tick : Vod.Fault.Chaos.tick) =
                List.iter
                  (fun nm ->
                    Ts.push (Ts.series ts nm)
                      (match nm with
                      | "under" -> tick.Vod.Fault.Chaos.t_under
                      | "in_flight" -> tick.Vod.Fault.Chaos.t_in_flight
                      | nm -> Vod.Telemetry.sample tick.Vod.Fault.Chaos.t_report nm))
                  names;
                last_slos := tick.Vod.Fault.Chaos.t_slos;
                last_footer :=
                  [
                    Printf.sprintf
                      "repair: %d in flight, %d under-replicated (%d unrepairable), %d \
                       installed this round"
                      tick.Vod.Fault.Chaos.t_in_flight tick.Vod.Fault.Chaos.t_under
                      tick.Vod.Fault.Chaos.t_unrepairable tick.Vod.Fault.Chaos.t_installs;
                  ];
                let round = tick.Vod.Fault.Chaos.t_report.Vod.Engine.time in
                if round mod interval = 0 then
                  draw ~final:false
                    (render ~title ~round ~total ~ts ~series_list:names ~slos:!last_slos
                       ~footer:!last_footer)
              in
              match Vod.Fault.Chaos.run ~on_round s with
              | Error e -> `Error (false, e)
              | Ok o ->
                  let verdict =
                    Printf.sprintf "verdict: %s, time to full replication %s, unserved %d"
                      (if Vod.Fault.Chaos.verdict_ok o then "RECOVERED"
                       else "NOT RECOVERED")
                      (match o.Vod.Fault.Chaos.time_to_full_replication with
                      | -1 -> "never"
                      | t -> Printf.sprintf "%d rounds" t)
                      o.Vod.Fault.Chaos.total_unserved
                  in
                  draw ~final:true
                    (render ~title ~round:total ~total ~ts ~series_list:names
                       ~slos:!last_slos
                       ~footer:(!last_footer @ [ verdict ]));
                  `Ok ()))
      | None -> (
          (* simulate mode: drive the engine like `simulate`, with the
             default rejection/startup SLO panel *)
          try
            let params, fleet, alloc =
              build_system ~n ~u ~d ~c ~k ~m ~mu ~duration ~seed ~scheme
            in
            let sim =
              Vod.Engine.create ~params ~fleet ~alloc ~policy:Vod.Engine.Continue
                ~matching:engine ()
            in
            let tele = Vod.Telemetry.create ~slos:(Vod.Telemetry.default_slos ()) () in
            let title = Printf.sprintf "vodctl top — simulate n=%d" n in
            let series_list = Vod.Telemetry.series_names in
            Vod.Engine.set_round_sink sim
              (Some
                 (fun report ->
                   Vod.Telemetry.observe tele sim report;
                   let round = report.Vod.Engine.time in
                   if round mod interval = 0 then
                     draw ~final:false
                       (render ~title ~round ~total:rounds
                          ~ts:(Vod.Telemetry.timeseries tele) ~series_list
                          ~slos:(Vod.Telemetry.slos tele) ~footer:[])));
            let g = Vod.Prng.create ~seed:(seed + 7) () in
            let gen =
              match workload with
              | `Zipf -> Vod.Generators.zipf_arrivals g ~rate ~s:0.9
              | `Uniform -> Vod.Generators.uniform_arrivals g ~rate
              | `Flash -> Vod.Generators.flash_crowd g ~video:0 ~background_rate:rate ()
            in
            let reports = Vod.Engine.run sim ~rounds ~demands_for:gen in
            let total_unserved =
              List.fold_left (fun acc r -> acc + r.Vod.Engine.unserved) 0 reports
            in
            draw ~final:true
              (render ~title ~round:rounds ~total:rounds
                 ~ts:(Vod.Telemetry.timeseries tele) ~series_list
                 ~slos:(Vod.Telemetry.slos tele)
                 ~footer:
                   [
                     (if total_unserved = 0 then "verdict: every request served on time"
                      else Printf.sprintf "verdict: %d requests went unserved" total_unserved);
                   ]);
            `Ok ()
          with
          | Invalid_argument e -> `Error (false, e)
          | Failure e -> `Error (false, e))
    end
  in
  let scenario_arg =
    Arg.(
      value
      & pos 0 (some string) None
      & info [] ~docv:"SCENARIO"
          ~doc:
            "Optional chaos scenario file: watch a chaos run (scenario rounds/seed) \
             instead of a plain simulate workload.")
  in
  let interval_arg =
    Arg.(
      value & opt int 10
      & info [ "interval" ] ~docv:"R" ~doc:"Redraw the dashboard every R rounds.")
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:
         "Live in-terminal dashboard over a run: sparkline time series of the round \
          reports, current SLO burn states and the repair backlog, redrawn in place \
          every --interval rounds (plain ANSI, isatty-gated; redirected output gets \
          the final frame only).")
    Term.(
      ret
        (const run $ scenario_arg $ n_arg $ u_arg $ d_arg $ c_arg $ k_arg $ m_arg
       $ mu_arg $ duration_arg $ rounds_arg $ seed_arg $ scheme_arg $ workload_arg
       $ rate_arg $ engine_arg $ interval_arg))

(* ------------------------------------------------------------------ *)
(* proto                                                               *)
(* ------------------------------------------------------------------ *)

let proto_cmd =
  let run n u d c k mu duration rounds seed rate =
    try
      let params, fleet, alloc =
        build_system ~n ~u ~d ~c ~k ~m:None ~mu ~duration ~seed
          ~scheme:Vod.System.Permutation
      in
      let p = Vod.Protocol.create { Vod.Protocol.params; fleet; alloc } in
      let g = Vod.Prng.create ~seed:(seed + 3) () in
      let m = Vod.Catalog.videos (Vod.Allocation.catalog alloc) in
      let issued = ref 0 in
      for round = 1 to rounds do
        if round <= rounds / 2 then begin
          let arrivals = Vod.Sample.poisson g rate in
          for _ = 1 to arrivals do
            let b = Vod.Prng.int g n in
            if Vod.Protocol.is_idle p b then begin
              Vod.Protocol.demand p ~box:b ~video:(Vod.Prng.int g m);
              incr issued
            end
          done
        end;
        Vod.Protocol.step p
      done;
      Printf.printf "demands issued: %d, completed: %d, in flight/stuck: %d\n" !issued
        (Vod.Protocol.completed_demands p)
        (Vod.Protocol.stalled_demands p);
      let delays = Vod.Protocol.startup_delays p in
      if Array.length delays > 0 then begin
        let f = Array.map float_of_int delays in
        Printf.printf "start-up: mean %.1f rounds, p95 %.0f\n" (Vod.Stats.mean f)
          (Vod.Stats.percentile f 95.0)
      end;
      let s = Vod.Protocol.message_stats p in
      Printf.printf
        "messages: counter %d, lookup %d, negotiation %d, registration %d, chunks %d\n"
        s.Vod.Protocol.counter s.Vod.Protocol.lookup s.Vod.Protocol.negotiation
        s.Vod.Protocol.registrations s.Vod.Protocol.chunks;
      Printf.printf "control messages per demand: %.1f\n"
        (Vod.Protocol.control_messages_per_demand p);
      `Ok ()
    with Invalid_argument e -> `Error (false, e)
  in
  Cmd.v
    (Cmd.info "proto"
       ~doc:"Run the fully decentralised protocol (DHT + negotiation) end to end.")
    Term.(
      ret
        (const run $ n_arg $ u_arg $ d_arg $ c_arg $ k_arg $ mu_arg $ duration_arg
       $ rounds_arg $ seed_arg $ rate_arg))

let () =
  let doc = "peer-to-peer video-on-demand scalability toolbox (IPDPS 2009 reproduction)" in
  let info = Cmd.info "vodctl" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            bounds_cmd;
            allocate_cmd;
            simulate_cmd;
            attack_cmd;
            sweep_cmd;
            plan_cmd;
            check_cmd;
            chaos_cmd;
            serve_cmd;
            battery_cmd;
            obs_report_cmd;
            top_cmd;
            proto_cmd;
          ]))
