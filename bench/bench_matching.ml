(* Scratch-vs-incremental matching benchmark.

   Synthesises round sequences that mimic the engine's per-round
   instance delta — a small fraction of requests departs and is
   replaced by fresh arrivals each round, capacities drift slightly —
   and times three paths over the identical instance sequence:

     scratch      Bipartite.solve (Dinic CSR core) into a shared arena
     incremental  warm-start repair (Bipartite.solve_incremental)
     csr_hk       the bare Hopcroft–Karp CSR core over a shared arena,
                  no outcome materialisation — the zero-allocation path

   Besides ns/round each record carries alloc/round, the
   [Gc.allocated_bytes] delta per round of the timed region: the
   csr_hk row is the one the zero-allocation acceptance watches (~0
   bytes once the arena has grown).  Emits both a human table and (via
   {!emit_json}) the machine-readable [BENCH_matching.json] record set
   that `bench/compare.exe` diffs against the committed baseline in
   CI. *)

open Vod

type record = {
  name : string;
  n : int;
  rounds : int;
  ns_per_round : float;
  matched_per_round : float;
  alloc_per_round : float; (* bytes *)
}

type scenario = { label : string; churn : float }

let scenarios = [ { label = "low-churn"; churn = 0.02 }; { label = "high-churn"; churn = 0.40 } ]
let sizes = [ 256; 1024; 4096; 16384 ]

(* One identity-stable synthetic round sequence: request l keeps its row
   (and hence its warm seat) unless churned, in which case it models a
   departure plus a fresh arrival.  Returns the instances plus the
   per-round churn sets (the lefts whose warm seat must be dropped). *)
let make_sequence ~seed ~n_left ~rounds ~churn =
  let g = Prng.create ~seed () in
  let n_right = max 1 (n_left / 4) in
  let degree = 8 in
  let fresh_row () = Array.init degree (fun _ -> Prng.int g n_right) in
  let right_cap = Array.init n_right (fun _ -> 2 + Prng.int g 7) in
  let adj = Array.init n_left (fun _ -> fresh_row ()) in
  let instances = ref [] in
  for _round = 1 to rounds do
    let churned = ref [] in
    for l = 0 to n_left - 1 do
      if Prng.float g 1.0 < churn then begin
        adj.(l) <- fresh_row ();
        churned := l :: !churned
      end
    done;
    (* capacity drift: a couple of boxes gain or lose one upload slot *)
    for _ = 1 to max 1 (n_right / 128) do
      let r = Prng.int g n_right in
      right_cap.(r) <- max 1 (right_cap.(r) + (if Prng.bool g then 1 else -1))
    done;
    let inst = Bipartite.create ~n_left ~n_right ~right_cap in
    Array.iteri
      (fun l row -> Array.iter (fun r -> Bipartite.add_edge inst ~left:l ~right:r) row)
      adj;
    (* force CSR finalize and the memoised dedup now so no timed solver
       pays for either *)
    ignore (Bipartite.csr inst);
    ignore (Bipartite.adjacency inst);
    instances := (inst, !churned) :: !instances
  done;
  List.rev !instances

let now_ns () = Unix.gettimeofday () *. 1e9

(* Every timed path reuses one arena per call, like the engine does;
   each timer returns (elapsed ns, total matched, allocated bytes). *)

let time_scratch seq ~arena =
  let matched = ref 0 in
  let b0 = Gc.allocated_bytes () in
  let t0 = now_ns () in
  List.iter
    (fun (inst, _) ->
      let o = Bipartite.solve ~arena inst in
      matched := !matched + o.Bipartite.matched)
    seq;
  let ns = now_ns () -. t0 in
  (ns, !matched, Gc.allocated_bytes () -. b0)

let time_incremental seq ~arena ~n_left =
  let st = Bipartite.Incremental.create () in
  let warm = ref (Array.make n_left (-1)) in
  let matched = ref 0 in
  let b0 = Gc.allocated_bytes () in
  let t0 = now_ns () in
  List.iter
    (fun (inst, churned) ->
      (* departures/arrivals lose their seat; survivors keep theirs *)
      List.iter (fun l -> !warm.(l) <- -1) churned;
      let o = Bipartite.solve_incremental st ~arena ~warm_start:!warm inst in
      warm := o.Bipartite.assignment;
      matched := !matched + o.Bipartite.matched)
    seq;
  let ns = now_ns () -. t0 in
  (ns, !matched, Gc.allocated_bytes () -. b0)

(* The bare CSR core: no outcome arrays, results stay in the arena.
   This is the ~0 bytes/round row. *)
let time_csr_hk seq ~arena =
  let matched = ref 0 in
  let b0 = Gc.allocated_bytes () in
  let t0 = now_ns () in
  List.iter
    (fun (inst, _) ->
      matched := !matched + Hopcroft_karp.solve_csr ~arena (Bipartite.csr inst))
    seq;
  let ns = now_ns () -. t0 in
  (ns, !matched, Gc.allocated_bytes () -. b0)

let run () =
  let records = ref [] in
  let arena = Arena.create () in
  List.iter
    (fun { label; churn } ->
      List.iter
        (fun n_left ->
          (* Small sizes need more rounds: the timed region must stay
             well above scheduler-jitter scale or the compare gate sees
             phantom regressions. *)
          let rounds =
            if n_left >= 16384 then 12 else if n_left >= 4096 then 32 else 96
          in
          let seq = make_sequence ~seed:(0xbe2c + n_left) ~n_left ~rounds ~churn in
          (* warm all paths once (allocator, code, arena growth) before
             timing *)
          ignore (time_scratch [ List.hd seq ] ~arena);
          ignore (time_incremental [ List.hd seq ] ~arena ~n_left);
          ignore (time_csr_hk [ List.hd seq ] ~arena);
          (* best-of-5: scheduler hiccups only ever add time, so the
             minimum is the stable estimate the regression gate needs;
             allocation is deterministic, so any run's delta serves *)
          let best_of f =
            let best = ref infinity and matched = ref 0 and bytes = ref 0.0 in
            for _ = 1 to 5 do
              let ns, m, b = f () in
              if ns < !best then best := ns;
              matched := m;
              bytes := b
            done;
            (!best, !matched, !bytes)
          in
          let scratch_ns, scratch_matched, scratch_b =
            best_of (fun () -> time_scratch seq ~arena)
          in
          let inc_ns, inc_matched, inc_b =
            best_of (fun () -> time_incremental seq ~arena ~n_left)
          in
          let hk_ns, hk_matched, hk_b = best_of (fun () -> time_csr_hk seq ~arena) in
          if scratch_matched <> inc_matched || scratch_matched <> hk_matched then
            failwith
              (Printf.sprintf
                 "bench_matching: solvers disagree at n=%d %s (scratch %d, \
                  incremental %d, csr_hk %d)"
                 n_left label scratch_matched inc_matched hk_matched);
          let r = float_of_int rounds in
          let mk name ns matched bytes =
            {
              name;
              n = n_left;
              rounds;
              ns_per_round = ns /. r;
              matched_per_round = float_of_int matched /. r;
              alloc_per_round = bytes /. r;
            }
          in
          records :=
            mk (Printf.sprintf "matching/csr_hk/%s" label) hk_ns hk_matched hk_b
            :: mk (Printf.sprintf "matching/incremental/%s" label) inc_ns inc_matched
                 inc_b
            :: mk (Printf.sprintf "matching/scratch/%s" label) scratch_ns
                 scratch_matched scratch_b
            :: !records)
        sizes)
    scenarios;
  List.rev !records

(* The single pinned point of the CI kernel smoke: the bare CSR
   Hopcroft-Karp core at n=16384 low churn, checked against an absolute
   ns/round ceiling (compare.exe --ceiling) so a kernel regression
   fails fast without waiting for the full bench leg. *)
let run_smoke () =
  let arena = Arena.create () in
  let n_left = 16384 and rounds = 12 in
  let seq = make_sequence ~seed:(0xbe2c + n_left) ~n_left ~rounds ~churn:0.02 in
  ignore (time_csr_hk [ List.hd seq ] ~arena);
  let best = ref infinity and matched = ref 0 and bytes = ref 0.0 in
  for _ = 1 to 5 do
    let ns, m, b = time_csr_hk seq ~arena in
    if ns < !best then best := ns;
    matched := m;
    bytes := b
  done;
  let r = float_of_int rounds in
  [
    {
      name = "matching/csr_hk/low-churn";
      n = n_left;
      rounds;
      ns_per_round = !best /. r;
      matched_per_round = float_of_int !matched /. r;
      alloc_per_round = !bytes /. r;
    };
  ]

(* ------------------------------------------------------------------ *)
(* Component-sharded solving at swarm scale                            *)
(* ------------------------------------------------------------------ *)

(* Swarm-structured instances: the catalog decomposes the fleet into
   independent swarms, so a round's bipartite instance is a disjoint
   union of blocks — exactly the shape the component sharder exploits.
   [block_lefts] requests share [block_rights] boxes; churn rewrites a
   row inside its own block, so the component structure is stable and a
   delta rebuild touches only the dirty rows.  This is the regime of
   the large-n acceptance points (n = 262144 and n = 1e6). *)
let block_lefts = 128
let block_rights = 32
let swarm_degree = 8
let swarm_churn = 0.05
let swarm_n_right n_left = (n_left + block_lefts - 1) / block_lefts * block_rights

let swarm_refill g rows l =
  let base = l / block_lefts * block_rights in
  for i = 0 to swarm_degree - 1 do
    rows.((l * swarm_degree) + i) <- base + Prng.int g block_rights
  done

type swarm_pass = { ns : float; matched : int; bytes : float }

(* One pass: build the instance once, then [rounds] churn steps, each a
   delta-CSR rebuild of the dirty rows followed by [solve].  The timed
   region covers rebuild + solve — the full per-round cost the engine
   pays — but not the initial construction or the solver warm-up. *)
let run_swarm_pass ~seed ~n_left ~rounds ~solve =
  let g = Prng.create ~seed () in
  let n_right = swarm_n_right n_left in
  let right_cap = Array.init n_right (fun _ -> 2 + Prng.int g 7) in
  let rows = Array.make (n_left * swarm_degree) 0 in
  for l = 0 to n_left - 1 do
    swarm_refill g rows l
  done;
  let fill l emit =
    for i = 0 to swarm_degree - 1 do
      emit rows.((l * swarm_degree) + i)
    done
  in
  let inst = Bipartite.create ~n_left ~n_right ~right_cap in
  for l = 0 to n_left - 1 do
    for i = 0 to swarm_degree - 1 do
      Bipartite.add_edge inst ~left:l ~right:rows.((l * swarm_degree) + i)
    done
  done;
  ignore (Bipartite.csr inst);
  ignore (solve inst);
  let dirty = Array.make n_left false in
  let matched = ref 0 in
  let b0 = Gc.allocated_bytes () in
  let t0 = now_ns () in
  for _round = 1 to rounds do
    Array.fill dirty 0 n_left false;
    for _ = 1 to max 1 (int_of_float (float_of_int n_left *. swarm_churn)) do
      let l = Prng.int g n_left in
      dirty.(l) <- true;
      swarm_refill g rows l
    done;
    Bipartite.delta_rebuild inst ~n_left ~right_cap
      ~src_of:(fun l -> if dirty.(l) then -1 else l)
      ~fill;
    matched := !matched + solve inst
  done;
  let ns = now_ns () -. t0 in
  { ns; matched = !matched; bytes = Gc.allocated_bytes () -. b0 }

(* The sharded path carries its warm seating across rounds, like the
   sharded engine does; stale seats re-validate inside the solver. *)
let sharded_solve ~n_left () =
  let sh = Shard.create () in
  let jobs = max 1 (Par.default_jobs ()) in
  let warm = Array.make (max n_left 1) (-1) in
  fun inst ->
    let size = Shard.solve ~jobs ~warm_start:warm sh (Bipartite.csr inst) in
    Array.blit (Shard.assignment sh) 0 warm 0 n_left;
    size

let hk_solve ~arena inst = Hopcroft_karp.solve_csr ~arena (Bipartite.csr inst)
let scale_sizes = [ 262_144; 1_000_000 ]

let run_sharded () =
  let arena = Arena.create () in
  List.concat_map
    (fun n_left ->
      let rounds = if n_left >= 1_000_000 then 3 else 6 in
      let reps = if n_left >= 1_000_000 then 2 else 3 in
      let best f =
        let p = ref (f ()) in
        for _ = 2 to reps do
          let q = f () in
          if q.ns < !p.ns then p := q
        done;
        !p
      in
      let seed = 0x5a2d + n_left in
      let sharded =
        best (fun () ->
            run_swarm_pass ~seed ~n_left ~rounds ~solve:(sharded_solve ~n_left ()))
      in
      let hk =
        best (fun () -> run_swarm_pass ~seed ~n_left ~rounds ~solve:(hk_solve ~arena))
      in
      if sharded.matched <> hk.matched then
        failwith
          (Printf.sprintf
             "bench_matching: sharded disagrees with csr_hk at n=%d (%d vs %d)"
             n_left sharded.matched hk.matched);
      let mk name p =
        {
          name;
          n = n_left;
          rounds;
          ns_per_round = p.ns /. float_of_int rounds;
          matched_per_round = float_of_int p.matched /. float_of_int rounds;
          alloc_per_round = p.bytes /. float_of_int rounds;
        }
      in
      [ mk "matching/sharded/swarms" sharded; mk "matching/csr_hk/swarms" hk ])
    scale_sizes

(* Catalog-scaling sweep: the per-request admission cost must stay flat
   as n grows — Theorem 1's linear-in-n scalability — across six orders
   of magnitude.  Printed only; the small sizes are too jittery for the
   regression gate, which watches the large JSON points instead. *)
let sweep_sizes = [ 10; 100; 1000; 10_000; 100_000; 1_000_000 ]

let print_scaling_sweep () =
  let tbl =
    Table.create
      ~columns:
        [
          ("n", Table.Right);
          ("rounds", Table.Right);
          ("ns/round", Table.Right);
          ("ns/round/n", Table.Right);
          ("matched/round", Table.Right);
        ]
  in
  List.iter
    (fun n_left ->
      let rounds =
        if n_left <= 100 then 64
        else if n_left <= 10_000 then 16
        else if n_left <= 100_000 then 8
        else 3
      in
      let p =
        run_swarm_pass ~seed:(0x51ee + n_left) ~n_left ~rounds
          ~solve:(sharded_solve ~n_left ())
      in
      let per_round = p.ns /. float_of_int rounds in
      Table.add_row tbl
        [
          string_of_int n_left;
          string_of_int rounds;
          Printf.sprintf "%.0f" per_round;
          Printf.sprintf "%.2f" (per_round /. float_of_int n_left);
          Printf.sprintf "%.1f" (float_of_int p.matched /. float_of_int rounds);
        ])
    sweep_sizes;
  Table.print
    ~title:"Sharded matching: catalog scaling (admission cost per request, Theorem 1)"
    tbl

let print_table records =
  let tbl =
    Table.create
      ~columns:
        [
          ("benchmark", Table.Left);
          ("n", Table.Right);
          ("rounds", Table.Right);
          ("ns/round", Table.Right);
          ("matched/round", Table.Right);
          ("alloc B/round", Table.Right);
        ]
  in
  List.iter
    (fun r ->
      Table.add_row tbl
        [
          r.name;
          string_of_int r.n;
          string_of_int r.rounds;
          Printf.sprintf "%.0f" r.ns_per_round;
          Printf.sprintf "%.1f" r.matched_per_round;
          Printf.sprintf "%.0f" r.alloc_per_round;
        ])
    records;
  Table.print ~title:"Connection matching: scratch vs warm-start incremental" tbl;
  (* headline: the ratio the acceptance gate watches *)
  let find name n = List.find_opt (fun r -> r.name = name && r.n = n) records in
  match
    (find "matching/scratch/low-churn" 4096, find "matching/incremental/low-churn" 4096)
  with
  | Some s, Some i when i.ns_per_round > 0.0 ->
      Printf.printf "low-churn n=4096 speed-up (scratch / incremental): %.1fx\n"
        (s.ns_per_round /. i.ns_per_round)
  | _ -> ()

let emit_json records ~path =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n  \"schema\": \"vod-bench-matching/1\",\n  \"records\": [\n";
  List.iteri
    (fun i r ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"name\": \"%s\", \"n\": %d, \"rounds\": %d, \"ns_per_round\": %.3f, \
            \"matched_per_round\": %.3f, \"alloc_per_round\": %.1f}%s\n"
           r.name r.n r.rounds r.ns_per_round r.matched_per_round r.alloc_per_round
           (if i = List.length records - 1 then "" else ",")))
    records;
  Buffer.add_string buf "  ]\n}\n";
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (Buffer.contents buf));
  Printf.printf "matching bench records written to %s\n" path
