(* Scratch-vs-incremental matching benchmark.

   Synthesises round sequences that mimic the engine's per-round
   instance delta — a small fraction of requests departs and is
   replaced by fresh arrivals each round, capacities drift slightly —
   and times a from-scratch solve against the warm-start incremental
   solver over the identical instance sequence.  Emits both a human
   table and (via {!emit_json}) the machine-readable
   [BENCH_matching.json] record set that `bench/compare.exe` diffs
   against the committed baseline in CI. *)

open Vod

type record = {
  name : string;
  n : int;
  rounds : int;
  ns_per_round : float;
  matched_per_round : float;
}

type scenario = { label : string; churn : float }

let scenarios = [ { label = "low-churn"; churn = 0.02 }; { label = "high-churn"; churn = 0.40 } ]
let sizes = [ 256; 1024; 4096 ]

(* One identity-stable synthetic round sequence: request l keeps its row
   (and hence its warm seat) unless churned, in which case it models a
   departure plus a fresh arrival.  Returns the instances plus the
   per-round churn sets (the lefts whose warm seat must be dropped). *)
let make_sequence ~seed ~n_left ~rounds ~churn =
  let g = Prng.create ~seed () in
  let n_right = max 1 (n_left / 4) in
  let degree = 8 in
  let fresh_row () = Array.init degree (fun _ -> Prng.int g n_right) in
  let right_cap = Array.init n_right (fun _ -> 2 + Prng.int g 7) in
  let adj = Array.init n_left (fun _ -> fresh_row ()) in
  let instances = ref [] in
  for _round = 1 to rounds do
    let churned = ref [] in
    for l = 0 to n_left - 1 do
      if Prng.float g 1.0 < churn then begin
        adj.(l) <- fresh_row ();
        churned := l :: !churned
      end
    done;
    (* capacity drift: a couple of boxes gain or lose one upload slot *)
    for _ = 1 to max 1 (n_right / 128) do
      let r = Prng.int g n_right in
      right_cap.(r) <- max 1 (right_cap.(r) + (if Prng.bool g then 1 else -1))
    done;
    let inst = Bipartite.create ~n_left ~n_right ~right_cap in
    Array.iteri
      (fun l row -> Array.iter (fun r -> Bipartite.add_edge inst ~left:l ~right:r) row)
      adj;
    (* force the memoised dedup now so neither timed solver pays it *)
    ignore (Bipartite.adjacency inst);
    instances := (inst, !churned) :: !instances
  done;
  List.rev !instances

let now_ns () = Unix.gettimeofday () *. 1e9

let time_scratch seq =
  let matched = ref 0 in
  let t0 = now_ns () in
  List.iter
    (fun (inst, _) ->
      let o = Bipartite.solve inst in
      matched := !matched + o.Bipartite.matched)
    seq;
  (now_ns () -. t0, !matched)

let time_incremental seq ~n_left =
  let st = Bipartite.Incremental.create () in
  let warm = ref (Array.make n_left (-1)) in
  let matched = ref 0 in
  let t0 = now_ns () in
  List.iter
    (fun (inst, churned) ->
      (* departures/arrivals lose their seat; survivors keep theirs *)
      List.iter (fun l -> !warm.(l) <- -1) churned;
      let o = Bipartite.solve_incremental st ~warm_start:!warm inst in
      warm := o.Bipartite.assignment;
      matched := !matched + o.Bipartite.matched)
    seq;
  (now_ns () -. t0, !matched)

let run () =
  let records = ref [] in
  List.iter
    (fun { label; churn } ->
      List.iter
        (fun n_left ->
          (* Small sizes need more rounds: the timed region must stay
             well above scheduler-jitter scale or the compare gate sees
             phantom regressions. *)
          let rounds = if n_left >= 4096 then 32 else 96 in
          let seq = make_sequence ~seed:(0xbe2c + n_left) ~n_left ~rounds ~churn in
          (* warm both paths once (allocator, code) before timing *)
          ignore (time_scratch [ List.hd seq ]);
          ignore (time_incremental [ List.hd seq ] ~n_left);
          (* best-of-5: scheduler hiccups only ever add time, so the
             minimum is the stable estimate the regression gate needs *)
          let best_of f =
            let best = ref infinity and matched = ref 0 in
            for _ = 1 to 5 do
              let ns, m = f () in
              if ns < !best then best := ns;
              matched := m
            done;
            (!best, !matched)
          in
          let scratch_ns, scratch_matched = best_of (fun () -> time_scratch seq) in
          let inc_ns, inc_matched = best_of (fun () -> time_incremental seq ~n_left) in
          if scratch_matched <> inc_matched then
            failwith
              (Printf.sprintf
                 "bench_matching: scratch and incremental disagree at n=%d %s (%d vs %d)"
                 n_left label scratch_matched inc_matched);
          let r = float_of_int rounds in
          let mk name ns matched =
            {
              name;
              n = n_left;
              rounds;
              ns_per_round = ns /. r;
              matched_per_round = float_of_int matched /. r;
            }
          in
          records :=
            mk (Printf.sprintf "matching/incremental/%s" label) inc_ns inc_matched
            :: mk (Printf.sprintf "matching/scratch/%s" label) scratch_ns scratch_matched
            :: !records)
        sizes)
    scenarios;
  List.rev !records

let print_table records =
  let tbl =
    Table.create
      ~columns:
        [
          ("benchmark", Table.Left);
          ("n", Table.Right);
          ("rounds", Table.Right);
          ("ns/round", Table.Right);
          ("matched/round", Table.Right);
        ]
  in
  List.iter
    (fun r ->
      Table.add_row tbl
        [
          r.name;
          string_of_int r.n;
          string_of_int r.rounds;
          Printf.sprintf "%.0f" r.ns_per_round;
          Printf.sprintf "%.1f" r.matched_per_round;
        ])
    records;
  Table.print ~title:"Connection matching: scratch vs warm-start incremental" tbl;
  (* headline: the ratio the acceptance gate watches *)
  let find name n =
    List.find_opt (fun r -> r.name = name && r.n = n) records
  in
  match (find "matching/scratch/low-churn" 4096, find "matching/incremental/low-churn" 4096) with
  | Some s, Some i when i.ns_per_round > 0.0 ->
      Printf.printf "low-churn n=4096 speed-up (scratch / incremental): %.1fx\n"
        (s.ns_per_round /. i.ns_per_round)
  | _ -> ()

let emit_json records ~path =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n  \"schema\": \"vod-bench-matching/1\",\n  \"records\": [\n";
  List.iteri
    (fun i r ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"name\": \"%s\", \"n\": %d, \"rounds\": %d, \"ns_per_round\": %.3f, \
            \"matched_per_round\": %.3f}%s\n"
           r.name r.n r.rounds r.ns_per_round r.matched_per_round
           (if i = List.length records - 1 then "" else ",")))
    records;
  Buffer.add_string buf "  ]\n}\n";
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (Buffer.contents buf));
  Printf.printf "matching bench records written to %s\n" path
