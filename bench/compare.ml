(* compare — diff a freshly generated BENCH_matching.json against the
   committed baseline and fail on ns_per_round regressions,
   matched_per_round drift or missing points.

     dune exec bench/compare.exe -- BASELINE CURRENT \
       [--threshold PCT] [--format table|json]

   A second mode checks absolute ceilings instead of a relative diff:

     dune exec bench/compare.exe -- CURRENT --ceiling NAME@N=NS ...

   Each (repeatable) --ceiling pins one record: the row named NAME at
   size N must exist and its ns_per_round must not exceed NS.  This is
   the CI kernel-smoke gate — baseline-independent, so a noisy runner
   can only trip it by being slower than the generously pinned
   absolute budget, not by drifting relative to a lucky baseline run.

   Records are matched on (name, n); every row gets one status:

     ok         within the threshold, no drift
     new        present only in the current run (never fails: the gate
                must survive adding benchmarks)
     regressed  ns_per_round exceeds the baseline's by more than the
                threshold (default 25%)
     drift      matched_per_round moved by more than 0.1% relative —
                the sequences are seeded, so cardinality is
                deterministic and a drift means a solver stopped
                finding the optimum, which no timing budget excuses
     missing    present only in the baseline.  A hard failure: a
                silently vanished point would otherwise turn the gate
                off for that benchmark (rename both sides together)

   [--format table] (default) prints the human table to stdout;
   [--format json] prints a machine-readable vod-bench-diff/1 document
   to stdout instead (CI uploads it as an artifact next to
   BENCH_matching.json).  In both formats the offending rows are
   repeated on stderr, so a failing CI log shows exactly which rows
   sank the run rather than a bare nonzero exit.  Exit status: 0
   clean, 1 regression/drift/missing, 2 bad input.  Wired as the CI
   perf stage and as `make bench-compare`. *)

(* ------------------------------------------------------------------ *)
(* Minimal JSON reader (objects, arrays, strings, numbers — the subset
   bench_matching.emit_json writes; no external JSON dependency).      *)
(* ------------------------------------------------------------------ *)

type json =
  | Obj of (string * json) list
  | Arr of json list
  | Str of string
  | Num of float
  | Bool of bool
  | Null

exception Parse of string

let parse_json (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let fail m = raise (Parse (Printf.sprintf "%s at offset %d" m !pos)) in
  let peek () = if !pos < n then s.[!pos] else '\000' in
  let advance () = incr pos in
  let rec skip_ws () =
    if !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    then begin
      advance ();
      skip_ws ()
    end
  in
  let expect c =
    skip_ws ();
    if peek () <> c then fail (Printf.sprintf "expected '%c'" c);
    advance ()
  in
  let literal word value =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      value
    end
    else fail ("expected " ^ word)
  in
  let string_body () =
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
          advance ();
          if !pos >= n then fail "dangling escape";
          (match s.[!pos] with
          | '"' -> Buffer.add_char buf '"'
          | '\\' -> Buffer.add_char buf '\\'
          | '/' -> Buffer.add_char buf '/'
          | 'n' -> Buffer.add_char buf '\n'
          | 't' -> Buffer.add_char buf '\t'
          | c -> fail (Printf.sprintf "unsupported escape \\%c" c));
          advance ();
          go ()
      | c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let number () =
    let start = !pos in
    let is_num_char c =
      (c >= '0' && c <= '9') || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "malformed number"
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | '{' ->
        advance ();
        skip_ws ();
        if peek () = '}' then begin
          advance ();
          Obj []
        end
        else begin
          let fields = ref [] in
          let rec members () =
            expect '"';
            let key = string_body () in
            expect ':';
            let v = value () in
            fields := (key, v) :: !fields;
            skip_ws ();
            match peek () with
            | ',' ->
                advance ();
                members ()
            | '}' -> advance ()
            | _ -> fail "expected ',' or '}'"
          in
          members ();
          Obj (List.rev !fields)
        end
    | '[' ->
        advance ();
        skip_ws ();
        if peek () = ']' then begin
          advance ();
          Arr []
        end
        else begin
          let items = ref [] in
          let rec elements () =
            let v = value () in
            items := v :: !items;
            skip_ws ();
            match peek () with
            | ',' ->
                advance ();
                elements ()
            | ']' -> advance ()
            | _ -> fail "expected ',' or ']'"
          in
          elements ();
          Arr (List.rev !items)
        end
    | '"' ->
        advance ();
        Str (string_body ())
    | 't' -> literal "true" (Bool true)
    | 'f' -> literal "false" (Bool false)
    | 'n' -> literal "null" Null
    | c when c = '-' || (c >= '0' && c <= '9') -> Num (number ())
    | _ -> fail "unexpected character"
  in
  let v = value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

(* ------------------------------------------------------------------ *)
(* Record extraction and comparison                                    *)
(* ------------------------------------------------------------------ *)

type record = {
  name : string;
  n : int;
  ns_per_round : float;
  matched_per_round : float option; (* absent in pre-drift-gate files *)
}

let field key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let records_of_file path =
  let contents =
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let root = parse_json contents in
  (match field "schema" root with
  | Some (Str "vod-bench-matching/1") -> ()
  | _ -> raise (Parse (path ^ ": missing or unknown \"schema\"")));
  match field "records" root with
  | Some (Arr items) ->
      List.map
        (fun item ->
          match (field "name" item, field "n" item, field "ns_per_round" item) with
          | Some (Str name), Some (Num n), Some (Num ns) ->
              let matched_per_round =
                match field "matched_per_round" item with
                | Some (Num m) -> Some m
                | _ -> None
              in
              { name; n = int_of_float n; ns_per_round = ns; matched_per_round }
          | _ -> raise (Parse (path ^ ": malformed record")))
        items
  | _ -> raise (Parse (path ^ ": missing \"records\" array"))

(* ------------------------------------------------------------------ *)
(* The diff                                                            *)
(* ------------------------------------------------------------------ *)

type status = Ok_row | New | Regressed | Drift | Missing

let status_name = function
  | Ok_row -> "ok"
  | New -> "new"
  | Regressed -> "regressed"
  | Drift -> "drift"
  | Missing -> "missing"

let failing = function Regressed | Drift | Missing -> true | Ok_row | New -> false

type row = {
  r_name : string;
  r_n : int;
  status : status;
  base_ns : float option;
  cur_ns : float option;
  delta_pct : float option;
  base_matched : float option;
  cur_matched : float option;
}

let diff ~threshold baseline current =
  let of_current cur =
    match List.find_opt (fun b -> b.name = cur.name && b.n = cur.n) baseline with
    | None ->
        {
          r_name = cur.name;
          r_n = cur.n;
          status = New;
          base_ns = None;
          cur_ns = Some cur.ns_per_round;
          delta_pct = None;
          base_matched = None;
          cur_matched = cur.matched_per_round;
        }
    | Some base ->
        let delta = 100.0 *. ((cur.ns_per_round /. base.ns_per_round) -. 1.0) in
        let drifted =
          match (base.matched_per_round, cur.matched_per_round) with
          | Some bm, Some cm -> abs_float (cm -. bm) > 0.001 *. Float.max 1.0 (abs_float bm)
          | _ -> false
        in
        let status =
          if drifted then Drift else if delta > threshold then Regressed else Ok_row
        in
        {
          r_name = cur.name;
          r_n = cur.n;
          status;
          base_ns = Some base.ns_per_round;
          cur_ns = Some cur.ns_per_round;
          delta_pct = Some delta;
          base_matched = base.matched_per_round;
          cur_matched = cur.matched_per_round;
        }
  in
  let missing =
    List.filter_map
      (fun b ->
        if List.exists (fun c -> c.name = b.name && c.n = b.n) current then None
        else
          Some
            {
              r_name = b.name;
              r_n = b.n;
              status = Missing;
              base_ns = Some b.ns_per_round;
              cur_ns = None;
              delta_pct = None;
              base_matched = b.matched_per_round;
              cur_matched = None;
            })
      baseline
  in
  List.map of_current current @ missing

let print_table ~threshold rows =
  Printf.printf "%-36s %6s %14s %14s %9s\n" "benchmark" "n" "baseline ns/rd"
    "current ns/rd" "status";
  List.iter
    (fun r ->
      let num = function Some v -> Printf.sprintf "%.0f" v | None -> "-" in
      let status =
        match (r.status, r.delta_pct) with
        | Ok_row, Some d -> Printf.sprintf "%+.1f%%" d
        | s, _ -> String.uppercase_ascii (status_name s)
      in
      Printf.printf "%-36s %6d %14s %14s %9s\n" r.r_name r.r_n (num r.base_ns)
        (num r.cur_ns) status)
    rows;
  if not (List.exists (fun r -> failing r.status) rows) then
    Printf.printf
      "verdict: no ns_per_round regression beyond %.0f%%, no matched_per_round drift, \
       no missing point\n"
      threshold

(* vod-bench-diff/1: one self-describing document, every row present
   with its status, nullable fields spelled null.  CI uploads it as an
   artifact next to the raw BENCH_matching.json records. *)
let print_json ~threshold rows =
  let b = Buffer.create 2048 in
  let opt = function Some v -> Printf.sprintf "%.3f" v | None -> "null" in
  Buffer.add_string b "{\n  \"schema\": \"vod-bench-diff/1\",\n";
  Buffer.add_string b (Printf.sprintf "  \"threshold_pct\": %.1f,\n" threshold);
  Buffer.add_string b
    (Printf.sprintf "  \"verdict\": \"%s\",\n"
       (if List.exists (fun r -> failing r.status) rows then "regression" else "clean"));
  Buffer.add_string b "  \"rows\": [\n";
  List.iteri
    (fun i r ->
      Buffer.add_string b
        (Printf.sprintf
           "    {\"name\": \"%s\", \"n\": %d, \"status\": \"%s\", \
            \"baseline_ns_per_round\": %s, \"current_ns_per_round\": %s, \
            \"delta_pct\": %s, \"baseline_matched_per_round\": %s, \
            \"current_matched_per_round\": %s}%s\n"
           r.r_name r.r_n (status_name r.status) (opt r.base_ns) (opt r.cur_ns)
           (opt r.delta_pct) (opt r.base_matched) (opt r.cur_matched)
           (if i = List.length rows - 1 then "" else ",")))
    rows;
  Buffer.add_string b "  ]\n}\n";
  print_string (Buffer.contents b)

(* Offending rows go to stderr in both formats: a failing CI log must
   show what sank the run, not a bare exit status. *)
let print_offenders ~threshold rows =
  List.iter
    (fun r ->
      match r.status with
      | Regressed ->
          Printf.eprintf "REGRESSION %s n=%d: %.0f -> %.0f ns/round (%+.1f%% > %.0f%%)\n"
            r.r_name r.r_n
            (Option.value r.base_ns ~default:0.0)
            (Option.value r.cur_ns ~default:0.0)
            (Option.value r.delta_pct ~default:0.0)
            threshold
      | Drift ->
          Printf.eprintf
            "DRIFT %s n=%d: matched/round %.3f -> %.3f (cardinality must not move)\n"
            r.r_name r.r_n
            (Option.value r.base_matched ~default:0.0)
            (Option.value r.cur_matched ~default:0.0)
      | Missing ->
          Printf.eprintf
            "MISSING %s n=%d: present in the baseline but absent from the current run\n"
            r.r_name r.r_n
      | Ok_row | New -> ())
    rows

(* --ceiling NAME@N=NS: absolute per-record budgets, no baseline. *)
let parse_ceiling spec =
  match String.index_opt spec '=' with
  | None -> None
  | Some eq -> (
      let lhs = String.sub spec 0 eq in
      let rhs = String.sub spec (eq + 1) (String.length spec - eq - 1) in
      match (String.rindex_opt lhs '@', float_of_string_opt rhs) with
      | Some at, Some ns when ns > 0.0 -> (
          let name = String.sub lhs 0 at in
          let n = String.sub lhs (at + 1) (String.length lhs - at - 1) in
          match int_of_string_opt n with
          | Some n when name <> "" -> Some (name, n, ns)
          | _ -> None)
      | _ -> None)

let check_ceilings ceilings path =
  let records = records_of_file path in
  let bad = ref false in
  List.iter
    (fun (name, n, budget) ->
      match List.find_opt (fun r -> r.name = name && r.n = n) records with
      | None ->
          Printf.eprintf "MISSING %s n=%d: no such record in %s\n" name n path;
          bad := true
      | Some r when r.ns_per_round > budget ->
          Printf.eprintf "CEILING %s n=%d: %.0f ns/round exceeds the %.0f ns budget\n"
            name n r.ns_per_round budget;
          bad := true
      | Some r ->
          Printf.printf "ok %s n=%d: %.0f ns/round within the %.0f ns budget\n" name n
            r.ns_per_round budget)
    ceilings;
  if not !bad then Printf.printf "verdict: all %d ceilings hold\n" (List.length ceilings);
  exit (if !bad then 1 else 0)

let () =
  let args = Array.to_list Sys.argv in
  let threshold = ref 25.0 in
  let format = ref `Table in
  let paths = ref [] in
  let ceilings = ref [] in
  let rec parse = function
    | [] -> ()
    | "--threshold" :: pct :: rest ->
        (match float_of_string_opt pct with
        | Some p when p > 0.0 -> threshold := p
        | _ ->
            prerr_endline "compare: --threshold expects a positive percentage";
            exit 2);
        parse rest
    | "--format" :: fmt :: rest ->
        (match fmt with
        | "table" -> format := `Table
        | "json" -> format := `Json
        | _ ->
            prerr_endline "compare: --format expects 'table' or 'json'";
            exit 2);
        parse rest
    | "--ceiling" :: spec :: rest ->
        (match parse_ceiling spec with
        | Some c -> ceilings := c :: !ceilings
        | None ->
            prerr_endline "compare: --ceiling expects NAME@N=NS with NS > 0";
            exit 2);
        parse rest
    | a :: rest ->
        paths := a :: !paths;
        parse rest
  in
  parse (List.tl args);
  match (List.rev !paths, List.rev !ceilings) with
  | [ current_path ], (_ :: _ as ceilings) -> (
      try check_ceilings ceilings current_path with
      | Parse m ->
          prerr_endline ("compare: " ^ m);
          exit 2
      | Sys_error m ->
          prerr_endline ("compare: " ^ m);
          exit 2)
  | [ baseline_path; current_path ], [] -> (
      try
        let baseline = records_of_file baseline_path in
        let current = records_of_file current_path in
        let rows = diff ~threshold:!threshold baseline current in
        (match !format with
        | `Table -> print_table ~threshold:!threshold rows
        | `Json -> print_json ~threshold:!threshold rows);
        print_offenders ~threshold:!threshold rows;
        exit (if List.exists (fun r -> failing r.status) rows then 1 else 0)
      with
      | Parse m ->
          prerr_endline ("compare: " ^ m);
          exit 2
      | Sys_error m ->
          prerr_endline ("compare: " ^ m);
          exit 2)
  | _ ->
      prerr_endline
        "usage: compare BASELINE.json CURRENT.json [--threshold PCT] [--format \
         table|json]\n\
        \       compare CURRENT.json --ceiling NAME@N=NS [--ceiling ...]";
      exit 2
