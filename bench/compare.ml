(* compare — diff a freshly generated BENCH_matching.json against the
   committed baseline and fail on ns_per_round regressions or
   matched_per_round drift.

     dune exec bench/compare.exe -- BASELINE CURRENT [--threshold PCT]

   Records are matched on (name, n).  A record regresses when its
   ns_per_round exceeds the baseline's by more than the threshold
   (default 25%).  When both sides carry matched_per_round, any
   relative drift beyond 0.1% also fails: the instance sequences are
   seeded, so the maximum-matching cardinality is deterministic — a
   drift means a solver stopped finding the optimum, which no timing
   threshold should excuse.  New records (no baseline entry) and
   retired records are reported but never fail the run, so the gate
   survives adding or renaming benchmarks.  Exit status: 0 clean,
   1 regression, 2 bad input.  Wired as an advisory CI job (see
   .github/workflows/ci.yml) and as `make bench-compare`. *)

(* ------------------------------------------------------------------ *)
(* Minimal JSON reader (objects, arrays, strings, numbers — the subset
   bench_matching.emit_json writes; no external JSON dependency).      *)
(* ------------------------------------------------------------------ *)

type json =
  | Obj of (string * json) list
  | Arr of json list
  | Str of string
  | Num of float
  | Bool of bool
  | Null

exception Parse of string

let parse_json (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let fail m = raise (Parse (Printf.sprintf "%s at offset %d" m !pos)) in
  let peek () = if !pos < n then s.[!pos] else '\000' in
  let advance () = incr pos in
  let rec skip_ws () =
    if !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    then begin
      advance ();
      skip_ws ()
    end
  in
  let expect c =
    skip_ws ();
    if peek () <> c then fail (Printf.sprintf "expected '%c'" c);
    advance ()
  in
  let literal word value =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      value
    end
    else fail ("expected " ^ word)
  in
  let string_body () =
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
          advance ();
          if !pos >= n then fail "dangling escape";
          (match s.[!pos] with
          | '"' -> Buffer.add_char buf '"'
          | '\\' -> Buffer.add_char buf '\\'
          | '/' -> Buffer.add_char buf '/'
          | 'n' -> Buffer.add_char buf '\n'
          | 't' -> Buffer.add_char buf '\t'
          | c -> fail (Printf.sprintf "unsupported escape \\%c" c));
          advance ();
          go ()
      | c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let number () =
    let start = !pos in
    let is_num_char c =
      (c >= '0' && c <= '9') || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "malformed number"
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | '{' ->
        advance ();
        skip_ws ();
        if peek () = '}' then begin
          advance ();
          Obj []
        end
        else begin
          let fields = ref [] in
          let rec members () =
            expect '"';
            let key = string_body () in
            expect ':';
            let v = value () in
            fields := (key, v) :: !fields;
            skip_ws ();
            match peek () with
            | ',' ->
                advance ();
                members ()
            | '}' -> advance ()
            | _ -> fail "expected ',' or '}'"
          in
          members ();
          Obj (List.rev !fields)
        end
    | '[' ->
        advance ();
        skip_ws ();
        if peek () = ']' then begin
          advance ();
          Arr []
        end
        else begin
          let items = ref [] in
          let rec elements () =
            let v = value () in
            items := v :: !items;
            skip_ws ();
            match peek () with
            | ',' ->
                advance ();
                elements ()
            | ']' -> advance ()
            | _ -> fail "expected ',' or ']'"
          in
          elements ();
          Arr (List.rev !items)
        end
    | '"' ->
        advance ();
        Str (string_body ())
    | 't' -> literal "true" (Bool true)
    | 'f' -> literal "false" (Bool false)
    | 'n' -> literal "null" Null
    | c when c = '-' || (c >= '0' && c <= '9') -> Num (number ())
    | _ -> fail "unexpected character"
  in
  let v = value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

(* ------------------------------------------------------------------ *)
(* Record extraction and comparison                                    *)
(* ------------------------------------------------------------------ *)

type record = {
  name : string;
  n : int;
  ns_per_round : float;
  matched_per_round : float option; (* absent in pre-drift-gate files *)
}

let field key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let records_of_file path =
  let contents =
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let root = parse_json contents in
  (match field "schema" root with
  | Some (Str "vod-bench-matching/1") -> ()
  | _ -> raise (Parse (path ^ ": missing or unknown \"schema\"")));
  match field "records" root with
  | Some (Arr items) ->
      List.map
        (fun item ->
          match (field "name" item, field "n" item, field "ns_per_round" item) with
          | Some (Str name), Some (Num n), Some (Num ns) ->
              let matched_per_round =
                match field "matched_per_round" item with
                | Some (Num m) -> Some m
                | _ -> None
              in
              { name; n = int_of_float n; ns_per_round = ns; matched_per_round }
          | _ -> raise (Parse (path ^ ": malformed record")))
        items
  | _ -> raise (Parse (path ^ ": missing \"records\" array"))

let () =
  let args = Array.to_list Sys.argv in
  let threshold = ref 25.0 in
  let paths = ref [] in
  let rec parse = function
    | [] -> ()
    | "--threshold" :: pct :: rest ->
        (match float_of_string_opt pct with
        | Some p when p > 0.0 -> threshold := p
        | _ ->
            prerr_endline "compare: --threshold expects a positive percentage";
            exit 2);
        parse rest
    | a :: rest ->
        paths := a :: !paths;
        parse rest
  in
  parse (List.tl args);
  match List.rev !paths with
  | [ baseline_path; current_path ] -> (
      try
        let baseline = records_of_file baseline_path in
        let current = records_of_file current_path in
        let regressions = ref [] in
        let drifts = ref [] in
        Printf.printf "%-36s %6s %14s %14s %9s\n" "benchmark" "n" "baseline ns/rd"
          "current ns/rd" "delta";
        List.iter
          (fun cur ->
            match
              List.find_opt (fun b -> b.name = cur.name && b.n = cur.n) baseline
            with
            | None ->
                Printf.printf "%-36s %6d %14s %14.0f %9s\n" cur.name cur.n "-"
                  cur.ns_per_round "new"
            | Some base ->
                let delta =
                  100.0 *. ((cur.ns_per_round /. base.ns_per_round) -. 1.0)
                in
                (match (base.matched_per_round, cur.matched_per_round) with
                | Some bm, Some cm
                  when abs_float (cm -. bm) > 0.001 *. Float.max 1.0 (abs_float bm)
                  ->
                    drifts := (cur, bm, cm) :: !drifts
                | _ -> ());
                let verdict =
                  if delta > !threshold then begin
                    regressions := (cur, base, delta) :: !regressions;
                    "REGRESSED"
                  end
                  else Printf.sprintf "%+.1f%%" delta
                in
                Printf.printf "%-36s %6d %14.0f %14.0f %9s\n" cur.name cur.n
                  base.ns_per_round cur.ns_per_round verdict)
          current;
        List.iter
          (fun b ->
            if
              not
                (List.exists (fun c -> c.name = b.name && c.n = b.n) current)
            then Printf.printf "%-36s %6d (retired: present only in baseline)\n" b.name b.n)
          baseline;
        List.iter
          (fun (cur, bm, cm) ->
            Printf.printf
              "DRIFT %s n=%d: matched/round %.3f -> %.3f (cardinality must not move)\n"
              cur.name cur.n bm cm)
          !drifts;
        match (!regressions, !drifts) with
        | [], [] ->
            Printf.printf
              "verdict: no ns_per_round regression beyond %.0f%%, no matched_per_round \
               drift\n"
              !threshold;
            exit 0
        | rs, _ ->
            List.iter
              (fun (cur, base, delta) ->
                Printf.printf
                  "REGRESSION %s n=%d: %.0f -> %.0f ns/round (%+.1f%% > %.0f%%)\n"
                  cur.name cur.n base.ns_per_round cur.ns_per_round delta !threshold)
              rs;
            exit 1
      with
      | Parse m ->
          prerr_endline ("compare: " ^ m);
          exit 2
      | Sys_error m ->
          prerr_endline ("compare: " ^ m);
          exit 2)
  | _ ->
      prerr_endline "usage: compare BASELINE.json CURRENT.json [--threshold PCT]";
      exit 2
