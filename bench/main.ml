(* Benchmark harness entry point.

   1. Runs the reproduction experiments E1-E9 (each regenerates one of
      the paper's claims as a printed table; see EXPERIMENTS.md).
   2. Runs Bechamel micro-benchmarks of the performance-critical
      substrate: max-flow solvers, allocation construction and the
      simulator round loop.
   3. Runs the scratch-vs-incremental matching benchmark
      (bench_matching.ml) and, with [--json PATH], writes its records
      as machine-readable JSON for the CI regression gate
      (bench/compare.exe).

   Run with:            dune exec bench/main.exe
   Skip micro-benches:  dune exec bench/main.exe -- --no-micro
   Skip experiments:    dune exec bench/main.exe -- --quick
   Kernel smoke only:   dune exec bench/main.exe -- --smoke --json OUT
                        (pinned csr_hk gate point + kernel micros, for
                        the CI ceiling check)
   Emit bench records:  dune exec bench/main.exe -- --json BENCH_matching.json
   Observability:       dune exec bench/main.exe -- --obs  (record spans/metrics
                        around the matching bench and print the summary)
   Overhead gate:       dune exec bench/main.exe -- --obs-gate BASE  (only the
                        telemetry on/off pair; writes BASE_off.json and
                        BASE_on.json for bench/compare.exe — see bench_obs.ml) *)

open Vod

let make_matching_instance ~seed ~n_left ~n_right =
  let g = Prng.create ~seed () in
  let right_cap = Array.init n_right (fun _ -> 1 + Prng.int g 4) in
  let inst = Bipartite.create ~n_left ~n_right ~right_cap in
  for l = 0 to n_left - 1 do
    let deg = 1 + Prng.int g 4 in
    for _ = 1 to deg do
      Bipartite.add_edge inst ~left:l ~right:(Prng.int g n_right)
    done
  done;
  inst

let micro_benchmarks () =
  let open Bechamel in
  let solver_test name algorithm =
    Test.make ~name
      (Staged.stage (fun () ->
           let inst = make_matching_instance ~seed:3 ~n_left:512 ~n_right:128 in
           ignore (Bipartite.solve ~algorithm inst)))
  in
  let alloc_test =
    Test.make ~name:"random_permutation n=256 m=256 c=2 k=4"
      (Staged.stage (fun () ->
           let g = Prng.create ~seed:5 () in
           let fleet = Box.Fleet.homogeneous ~n:256 ~u:2.0 ~d:4.0 in
           let catalog = Catalog.create ~m:256 ~c:2 in
           ignore (Schemes.random_permutation g ~fleet ~catalog ~k:4)))
  in
  let step_test =
    Test.make ~name:"engine: 20 rounds, n=64, zipf load"
      (Staged.stage (fun () ->
           let fleet = Box.Fleet.homogeneous ~n:64 ~u:2.0 ~d:4.0 in
           let catalog = Catalog.create ~m:32 ~c:2 in
           let g = Prng.create ~seed:7 () in
           let alloc = Schemes.random_permutation g ~fleet ~catalog ~k:4 in
           let params = Params.make ~n:64 ~c:2 ~mu:1.5 ~duration:15 in
           let sim = Engine.create ~params ~fleet ~alloc ~policy:Engine.Continue () in
           let wg = Prng.create ~seed:9 () in
           let gen = Generators.zipf_arrivals wg ~rate:2.0 ~s:0.9 in
           ignore (Engine.run sim ~rounds:20 ~demands_for:gen)))
  in
  let ring_test =
    Test.make ~name:"dht: 400 lookups on a 1024-node ring"
      (Staged.stage (fun () ->
           let d = Directory.create ~nodes:(List.init 1024 Fun.id) in
           let g = Prng.create ~seed:11 () in
           for _ = 1 to 400 do
             ignore (Directory.resolve d ~origin:(Prng.int g 1024) ~stripe:(Prng.int g 100_000))
           done))
  in
  let obstruction_test =
    Test.make ~name:"union bound n=64 c=2 k=8"
      (Staged.stage (fun () ->
           ignore
             (Obstruction_bound.log_union_bound ~u_eff:2.0 ~nu:(1.0 /. 12.0) ~n:64 ~c:2
                ~k:8 ~m:16)))
  in
  let tests =
    Test.make_grouped ~name:"vod"
      [
        solver_test "matching: dinic 512x128" Bipartite.Dinic_flow;
        solver_test "matching: push-relabel 512x128" Bipartite.Push_relabel_flow;
        solver_test "matching: hopcroft-karp 512x128" Bipartite.Hopcroft_karp_matching;
        alloc_test;
        step_test;
        ring_test;
        obstruction_test;
      ]
  in
  let benchmark () =
    let instances = Toolkit.Instance.[ monotonic_clock ] in
    let cfg = Benchmark.cfg ~limit:300 ~quota:(Time.second 0.5) ~kde:(Some 300) () in
    Benchmark.all cfg instances tests
  in
  let analyze results =
    let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
    Analyze.all ols Toolkit.Instance.monotonic_clock results
  in
  print_newline ();
  print_endline "=== Bechamel micro-benchmarks (monotonic clock, ns/run) ===";
  let results = analyze (benchmark ()) in
  Hashtbl.iter
    (fun name ols ->
      match Bechamel.Analyze.OLS.estimates ols with
      | Some [ est ] -> Printf.printf "%-42s %12.0f ns/run\n" name est
      | _ -> Printf.printf "%-42s (no estimate)\n" name)
    results

let flag_arg name =
  let path = ref None in
  Array.iteri
    (fun i a ->
      if a = name then
        if i + 1 < Array.length Sys.argv then path := Some Sys.argv.(i + 1)
        else begin
          prerr_endline (name ^ " requires a PATH argument");
          exit 2
        end)
    Sys.argv;
  !path

let json_path () = flag_arg "--json"

let () =
  (* --obs-gate BASE: run only the telemetry-overhead pair (see
     bench_obs.ml) — the CI obs-overhead step, which has no use for the
     experiment tables or micro-benches. *)
  (match flag_arg "--obs-gate" with
  | Some base ->
      Bench_obs.run_gate ~base;
      exit 0
  | None -> ());
  let no_micro = Array.exists (fun a -> a = "--no-micro") Sys.argv in
  let quick = Array.exists (fun a -> a = "--quick") Sys.argv in
  let obs = Array.exists (fun a -> a = "--obs") Sys.argv in
  let json = json_path () in
  (* --smoke: only the pinned kernel gate point plus the kernel micro
     records, for the CI ceiling check — seconds, not minutes. *)
  if Array.exists (fun a -> a = "--smoke") Sys.argv then begin
    let records = Bench_matching.run_smoke () @ Bench_kernels.run () in
    Bench_matching.print_table records;
    (match json with
    | None -> ()
    | Some path -> Bench_matching.emit_json records ~path);
    exit 0
  end;
  print_endline "Reproduction harness for:";
  print_endline
    "  Boufkhad, Mathieu, de Montgolfier, Perino, Viennot.\n\
    \  \"An Upload Bandwidth Threshold for Peer-to-Peer Video-on-Demand\n\
    \  Scalability\", IPDPS 2009.";
  if not quick then Experiments.run_all ()
  else print_endline "(--quick: skipping the E1-E9 experiment tables)";
  if not no_micro then micro_benchmarks ();
  print_newline ();
  (* Span recording around the matching bench distorts the ns/round
     numbers it reports, so --obs is for attribution runs, not for
     refreshing the committed baseline. *)
  let recorder =
    if obs then begin
      Obs.Registry.reset Obs.Registry.default;
      let r = Obs.Span.create_recorder () in
      Obs.Span.install r;
      Some r
    end
    else None
  in
  let records =
    Bench_matching.run () @ Bench_matching.run_sharded () @ Bench_kernels.run ()
    @ Bench_serve.run ()
  in
  (match recorder with
  | None -> ()
  | Some r ->
      Obs.Span.uninstall ();
      Obs.Report.print_summary (Obs.Report.of_recorder ~registry:Obs.Registry.default r);
      print_newline ());
  Bench_matching.print_table records;
  Bench_matching.print_scaling_sweep ();
  (match json with
  | None -> ()
  | Some path -> Bench_matching.emit_json records ~path);
  print_newline ();
  print_endline
    "All experiments completed. See EXPERIMENTS.md for the paper-vs-measured record."
