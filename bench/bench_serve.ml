(* Service-mode benchmark: the `vodctl serve` event loop at n = 16384.

   Two records for the CI regression gate (bench/compare.exe), both on
   the same homogeneous fleet the telemetry bench uses (u 2.0, d 4.0,
   c 2, k 4, m 2048):

     serve/loop/poisson      ns per service round under a steady
                             Poisson load the token bucket sustains
                             without queueing — system build, fault
                             sweep, admission scan, engine step,
                             session/startup sweeps and the telemetry
                             sinks, i.e. the whole loop body.
                             matched_per_round = admissions per round.

     serve/admission/storm   ns per admission decision when arrivals
                             run ~4x past the queue capacity: the cost
                             of bounded-queue management, token /
                             headroom / mu checks and the
                             oldest-deadline-first overflow shed, the
                             paths a flash crowd exercises.
                             matched_per_round = decisions per round.

   Serve.run is deterministic at a fixed seed, so matched_per_round is
   exact and the compare drift gate applies at full strength; only the
   ns columns carry noise (best-of-[reps] with an untimed warmup, like
   bench_matching). *)

open Vod

let n = 16384
let reps = 3

let scenario ~rate ~rounds =
  {
    Serve.Scenario.default with
    Serve.Scenario.name = "bench-serve";
    n;
    u = 2.0;
    d = 4.0;
    c = 2;
    k = 4;
    m = Some 2048;
    mu = 1.5;
    duration = 15;
    rounds;
    seed = 11;
    rate;
    groups = None;
    helpers = [];
    events = [];
  }

let now_ns () = Unix.gettimeofday () *. 1e9

(* (best ns, outcome, smallest alloc delta) over [reps] timed runs. *)
let best_of f =
  ignore (f ());
  let best = ref infinity and out = ref None and alloc = ref infinity in
  for _ = 1 to reps do
    let b0 = Gc.allocated_bytes () in
    let t0 = now_ns () in
    let o = f () in
    let ns = now_ns () -. t0 in
    let bytes = Gc.allocated_bytes () -. b0 in
    if ns < !best then begin
      best := ns;
      out := Some o
    end;
    if bytes < !alloc then alloc := bytes
  done;
  (!best, Option.get !out, !alloc)

let serve s ~config ~rounds () =
  match Serve.run ~rounds ~config s with
  | Ok o -> o
  | Error e -> failwith ("bench_serve: " ^ e)

let loop_record () =
  let rounds = 30 in
  let s = scenario ~rate:200.0 ~rounds in
  let config = Serve.default_config in
  let ns, o, bytes = best_of (serve s ~config ~rounds) in
  let fr = float_of_int rounds in
  let t = o.Serve.totals in
  {
    Bench_matching.name = "serve/loop/poisson";
    n;
    rounds;
    ns_per_round = ns /. fr;
    matched_per_round = float_of_int t.Serve.admitted /. fr;
    alloc_per_round = bytes /. fr;
  }

let admission_record () =
  let rounds = 30 in
  let s = scenario ~rate:2000.0 ~rounds in
  let config = Serve.config ~queue_cap:512 () in
  let ns, o, bytes = best_of (serve s ~config ~rounds) in
  let t = o.Serve.totals in
  (* every session reaches exactly one of these verdicts, so the sum
     counts admission decisions without double-counting retries *)
  let decisions = t.Serve.admitted + t.Serve.shed + t.Serve.rejected in
  let fd = float_of_int decisions in
  {
    Bench_matching.name = "serve/admission/storm";
    n;
    rounds;
    ns_per_round = ns /. fd;
    matched_per_round = fd /. float_of_int rounds;
    alloc_per_round = bytes /. fd;
  }

let run () = [ loop_record (); admission_record () ]
