(* Telemetry-overhead gate: the same engine-driven point run twice —
   round sink off, then on (Timeseries rings + the default SLO pair) —
   emitted as two single-record BENCH files under the SAME record name
   so `bench/compare.exe BASE_off.json BASE_on.json` turns the existing
   regression gate into an overhead bound:

     - ns_per_round over the threshold  -> telemetry is too expensive;
     - matched_per_round drift          -> telemetry perturbed the run,
       which the observation-only round-sink contract forbids (both
       variants share one seed, so served counts must be identical).

   The point matches the matching bench's largest size (n = 16384) so
   the bound is taken where per-round work is most expensive relative
   to the fixed per-round telemetry cost's worst case.  Run via
   `dune exec bench/main.exe -- --obs-gate BASE` (skips everything
   else) — the CI obs-overhead step. *)

open Vod

let n = 16384
let rounds = 40
let reps = 3 (* best-of, same discipline as the matching bench *)

let build () =
  let fleet = Box.Fleet.homogeneous ~n ~u:2.0 ~d:4.0 in
  let catalog = Catalog.create ~m:256 ~c:2 in
  let g = Prng.create ~seed:5 () in
  let alloc = Schemes.random_permutation g ~fleet ~catalog ~k:4 in
  let params = Params.make ~n ~c:2 ~mu:1.5 ~duration:15 in
  (params, fleet, alloc)

(* One run; both variants share the workload seed so they process the
   identical demand sequence.  Returns (ns total, served total). *)
let run_once ~telemetry =
  let params, fleet, alloc = build () in
  let sim = Engine.create ~params ~fleet ~alloc ~policy:Engine.Continue () in
  let tele =
    if telemetry then begin
      let t = Telemetry.create ~slos:(Telemetry.default_slos ()) () in
      Telemetry.attach t sim;
      Some t
    end
    else None
  in
  let wg = Prng.create ~seed:9 () in
  let gen = Generators.zipf_arrivals wg ~rate:400.0 ~s:0.9 in
  let b0 = Gc.allocated_bytes () in
  let t0 = Unix.gettimeofday () *. 1e9 in
  let reports = Engine.run sim ~rounds ~demands_for:gen in
  let ns = (Unix.gettimeofday () *. 1e9) -. t0 in
  let bytes = Gc.allocated_bytes () -. b0 in
  let served = List.fold_left (fun acc r -> acc + r.Engine.served) 0 reports in
  (match tele with
  | Some t when Telemetry.rounds t <> rounds ->
      Printf.eprintf "obs-gate: sink saw %d rounds, expected %d\n" (Telemetry.rounds t)
        rounds;
      exit 2
  | _ -> ());
  (ns, served, bytes)

let record ~telemetry =
  let best = ref infinity and served = ref (-1) and bytes = ref 0.0 in
  for _ = 1 to reps do
    let ns, s, b = run_once ~telemetry in
    if !served >= 0 && s <> !served then begin
      Printf.eprintf "obs-gate: served total changed between reps (%d vs %d)\n" !served s;
      exit 2
    end;
    served := s;
    if ns < !best then begin
      best := ns;
      bytes := b
    end
  done;
  ( {
      Bench_matching.name = "engine/telemetry-gate";
      n;
      rounds;
      ns_per_round = !best /. float_of_int rounds;
      matched_per_round = float_of_int !served /. float_of_int rounds;
      alloc_per_round = !bytes /. float_of_int rounds;
    },
    !served )

let run_gate ~base =
  Printf.printf "=== telemetry-overhead gate: n=%d, %d rounds, best of %d ===\n%!" n
    rounds reps;
  let off, served_off = record ~telemetry:false in
  let on, served_on = record ~telemetry:true in
  if served_off <> served_on then begin
    (* the sink is observation-only; a diverging run is a correctness
       bug, not an overhead question *)
    Printf.eprintf "obs-gate: telemetry perturbed the run (served %d vs %d)\n" served_off
      served_on;
    exit 2
  end;
  let overhead =
    if off.Bench_matching.ns_per_round > 0.0 then
      (on.Bench_matching.ns_per_round -. off.Bench_matching.ns_per_round)
      /. off.Bench_matching.ns_per_round *. 100.0
    else 0.0
  in
  Printf.printf "  off: %10.0f ns/round   (served %d)\n" off.Bench_matching.ns_per_round
    served_off;
  Printf.printf "  on:  %10.0f ns/round   (served %d)\n" on.Bench_matching.ns_per_round
    served_on;
  Printf.printf "  telemetry overhead: %+.1f%%\n" overhead;
  Bench_matching.emit_json [ off ] ~path:(base ^ "_off.json");
  Bench_matching.emit_json [ on ] ~path:(base ^ "_on.json");
  Printf.printf "  wrote %s_off.json / %s_on.json (diff with bench/compare.exe)\n" base
    base
