(* Micro-benchmarks for the word-parallel matching kernels.

   Three sections, each a pair of records so compare.exe tracks kernel
   drift (and the won speedups) point by point:

     kernels/layer_build/{bitset,array}    one BFS layer expansion —
         OR the frontier lefts' rows into a right-side set.  The bitset
         path is the Hopcroft-Karp/Dinic inner loop (raw word writes +
         andnot sweep); the array baseline is the per-vertex seen-array
         walk the kernels replaced.
     kernels/adjacency_sweep/{packed,unpacked}    whole-edge-set pass:
         the packed (owner lsl 31 | server) flat sweep vs the nested
         row_start/col loop.
     kernels/csr_hk_layout/{clustered,interleaved}    the full HK core
         on the same swarm-structured instance with components laid out
         contiguously vs round-robin interleaved across the id space —
         the locality gap the Layout renumbering pass closes.

   [matched_per_round] carries a deterministic work measure per section
   (bits built, edges visited, requests matched) so the compare gate's
   drift check also pins kernel outputs, not just their speed. *)

open Vod
module Bitset = Vod_util.Bitset

type record = Bench_matching.record = {
  name : string;
  n : int;
  rounds : int;
  ns_per_round : float;
  matched_per_round : float;
  alloc_per_round : float;
}

let now_ns () = Unix.gettimeofday () *. 1e9

let best_of ~repeats f =
  let best = ref infinity and work = ref 0 and bytes = ref 0.0 in
  for _ = 1 to repeats do
    let ns, w, b = f () in
    if ns < !best then best := ns;
    work := w;
    bytes := b
  done;
  (!best, !work, !bytes)

(* ------------------------------------------------------------------ *)
(* Layer build                                                         *)
(* ------------------------------------------------------------------ *)

let layer_n_left = 16384
let layer_degree = 8
let layer_rounds = 64

(* A frontier of every fourth left, expanded once per round against a
   visited set holding every third right: the mix of fresh and already
   visited rights both paths must filter. *)
let make_layer_instance () =
  let g = Prng.create ~seed:0xb17 () in
  let n_left = layer_n_left in
  let n_right = n_left / 4 in
  let b =
    Bipartite.create ~n_left ~n_right ~right_cap:(Array.make n_right 2)
  in
  for l = 0 to n_left - 1 do
    for _ = 1 to layer_degree do
      Bipartite.add_edge b ~left:l ~right:(Prng.int g n_right)
    done
  done;
  Bipartite.csr b

let time_layer_bitset csr =
  let n_left = Csr.n_left csr and n_right = Csr.n_right csr in
  let row_start = Csr.row_start csr and col = Csr.col csr in
  let frontier = Bitset.create n_right and visited = Bitset.create n_right in
  let built = ref 0 in
  let b0 = Gc.allocated_bytes () in
  let t0 = now_ns () in
  for _ = 1 to layer_rounds do
    Bitset.clear visited;
    for r = 0 to (n_right / 3) - 1 do
      Bitset.unsafe_add visited (3 * r)
    done;
    Bitset.clear frontier;
    let fw = Bitset.words frontier in
    let wsh = Bitset.word_shift and bmask = Bitset.bit_mask in
    let l = ref 0 in
    while !l < n_left do
      for i = row_start.(!l) to row_start.(!l + 1) - 1 do
        let r = Array.unsafe_get col i in
        let w = r lsr wsh in
        Array.unsafe_set fw w (Array.unsafe_get fw w lor (1 lsl (r land bmask)))
      done;
      l := !l + 4
    done;
    Bitset.andnot_into ~dst:frontier visited;
    built := !built + Bitset.cardinal frontier
  done;
  (now_ns () -. t0, !built, Gc.allocated_bytes () -. b0)

let time_layer_array csr =
  let n_left = Csr.n_left csr and n_right = Csr.n_right csr in
  let row_start = Csr.row_start csr and col = Csr.col csr in
  let seen = Array.make n_right false in
  let layer = Array.make n_right 0 in
  let built = ref 0 in
  let b0 = Gc.allocated_bytes () in
  let t0 = now_ns () in
  for _ = 1 to layer_rounds do
    Array.fill seen 0 n_right false;
    for r = 0 to (n_right / 3) - 1 do
      seen.(3 * r) <- true
    done;
    let filled = ref 0 in
    let l = ref 0 in
    while !l < n_left do
      for i = row_start.(!l) to row_start.(!l + 1) - 1 do
        let r = Array.unsafe_get col i in
        if not (Array.unsafe_get seen r) then begin
          Array.unsafe_set seen r true;
          Array.unsafe_set layer !filled r;
          incr filled
        end
      done;
      l := !l + 4
    done;
    built := !built + !filled
  done;
  (now_ns () -. t0, !built, Gc.allocated_bytes () -. b0)

(* ------------------------------------------------------------------ *)
(* Adjacency sweep                                                     *)
(* ------------------------------------------------------------------ *)

let sweep_rounds = 64

let time_sweep_unpacked csr =
  let n_left = Csr.n_left csr in
  let row_start = Csr.row_start csr and col = Csr.col csr in
  let visited = ref 0 and acc = ref 0 in
  let b0 = Gc.allocated_bytes () in
  let t0 = now_ns () in
  for _ = 1 to sweep_rounds do
    for l = 0 to n_left - 1 do
      for i = row_start.(l) to row_start.(l + 1) - 1 do
        acc := !acc lxor (l + Array.unsafe_get col i);
        incr visited
      done
    done
  done;
  ignore (Sys.opaque_identity !acc);
  (now_ns () -. t0, !visited, Gc.allocated_bytes () -. b0)

let time_sweep_packed csr =
  let m = Csr.n_edges csr in
  let packed = Csr.packed_edges csr in
  let visited = ref 0 and acc = ref 0 in
  let b0 = Gc.allocated_bytes () in
  let t0 = now_ns () in
  for _ = 1 to sweep_rounds do
    for i = 0 to m - 1 do
      let p = Array.unsafe_get packed i in
      acc := !acc lxor ((p lsr Csr.packed_shift) + (p land Csr.packed_mask));
      incr visited
    done
  done;
  ignore (Sys.opaque_identity !acc);
  (now_ns () -. t0, !visited, Gc.allocated_bytes () -. b0)

(* ------------------------------------------------------------------ *)
(* Layout: clustered vs interleaved component order                    *)
(* ------------------------------------------------------------------ *)

let layout_blocks = 512
let layout_block_lefts = 128
let layout_block_rights = 32
let layout_degree = 8
let layout_rounds = 8

(* The same swarm population laid out two ways: [clustered] numbers
   each swarm contiguously (the renumbering the Layout pass computes),
   [interleaved] round-robins the swarms across the id space (the shape
   an arrival-ordered engine instance takes).  Identical edge
   multiset up to relabelling, so matched counts agree. *)
let make_layout_instance ~interleaved =
  let g = Prng.create ~seed:0x1a9 () in
  let blocks = layout_blocks in
  let n_left = blocks * layout_block_lefts in
  let n_right = blocks * layout_block_rights in
  let right_cap = Array.make n_right 0 in
  let cap_of_slot = Array.init n_right (fun _ -> 2 + Prng.int g 7) in
  let right_id ~swarm ~j =
    if interleaved then swarm + (blocks * j) else (swarm * layout_block_rights) + j
  in
  for swarm = 0 to blocks - 1 do
    for j = 0 to layout_block_rights - 1 do
      right_cap.(right_id ~swarm ~j) <- cap_of_slot.((swarm * layout_block_rights) + j)
    done
  done;
  let b = Bipartite.create ~n_left ~n_right ~right_cap in
  for slot = 0 to n_left - 1 do
    let swarm = slot / layout_block_lefts in
    let l =
      if interleaved then (slot mod layout_block_lefts * blocks) + swarm else slot
    in
    for _ = 1 to layout_degree do
      Bipartite.add_edge b ~left:l ~right:(right_id ~swarm ~j:(Prng.int g layout_block_rights))
    done
  done;
  Bipartite.csr b

let time_hk ?layout csr =
  let arena = Arena.create () in
  let lay = Layout.create () in
  let round () =
    let instance =
      match layout with Some true -> Layout.prepare lay csr | _ -> csr
    in
    let m = Hopcroft_karp.solve_csr ~arena instance in
    (match layout with Some true -> Layout.commit lay arena | _ -> ());
    m
  in
  (* one untimed round grows the arena AND the layout's tables /
     permuted instance to their high-water marks *)
  ignore (round ());
  let matched = ref 0 in
  let b0 = Gc.allocated_bytes () in
  let t0 = now_ns () in
  for _ = 1 to layout_rounds do
    matched := !matched + round ()
  done;
  (now_ns () -. t0, !matched, Gc.allocated_bytes () -. b0)

(* ------------------------------------------------------------------ *)

let run () =
  let mk name n rounds (ns, work, bytes) =
    let r = float_of_int rounds in
    {
      name;
      n;
      rounds;
      ns_per_round = ns /. r;
      matched_per_round = float_of_int work /. r;
      alloc_per_round = bytes /. r;
    }
  in
  let layer = make_layer_instance () in
  ignore (time_layer_bitset layer);
  ignore (time_layer_array layer);
  let bitset = best_of ~repeats:5 (fun () -> time_layer_bitset layer) in
  let array = best_of ~repeats:5 (fun () -> time_layer_array layer) in
  let (_, bits, _) = bitset and (_, cells, _) = array in
  if bits <> cells then
    failwith
      (Printf.sprintf "bench_kernels: layer builds disagree (bitset %d, array %d)"
         bits cells);
  ignore (time_sweep_unpacked layer);
  ignore (time_sweep_packed layer);
  let unpacked = best_of ~repeats:5 (fun () -> time_sweep_unpacked layer) in
  let packed = best_of ~repeats:5 (fun () -> time_sweep_packed layer) in
  let clustered_csr = make_layout_instance ~interleaved:false in
  let interleaved_csr = make_layout_instance ~interleaved:true in
  let clustered = best_of ~repeats:3 (fun () -> time_hk clustered_csr) in
  let interleaved = best_of ~repeats:3 (fun () -> time_hk interleaved_csr) in
  let relabelled = best_of ~repeats:3 (fun () -> time_hk ~layout:true interleaved_csr) in
  let (_, mc, _) = clustered and (_, mi, _) = interleaved and (_, mr, _) = relabelled in
  if mc <> mi || mi <> mr then
    failwith
      (Printf.sprintf
         "bench_kernels: layout variants disagree (clustered %d, interleaved %d, \
          relabelled %d)"
         mc mi mr);
  [
    mk "kernels/layer_build/bitset" layer_n_left layer_rounds bitset;
    mk "kernels/layer_build/array" layer_n_left layer_rounds array;
    mk "kernels/adjacency_sweep/packed" layer_n_left sweep_rounds packed;
    mk "kernels/adjacency_sweep/unpacked" layer_n_left sweep_rounds unpacked;
    mk "kernels/csr_hk_layout/clustered"
      (layout_blocks * layout_block_lefts)
      layout_rounds clustered;
    mk "kernels/csr_hk_layout/interleaved"
      (layout_blocks * layout_block_lefts)
      layout_rounds interleaved;
    mk "kernels/csr_hk_layout/relabelled"
      (layout_blocks * layout_block_lefts)
      layout_rounds relabelled;
  ]
