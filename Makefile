.PHONY: all build test check fuzz bench clean

all: build

build:
	dune build

test:
	dune runtest

# Short-budget differential fuzz pass (separate from `dune runtest`):
# 200 random bipartite instances x 4 max-matching solvers plus 6
# simulated scenarios x 3 schedulers, every engine failure round
# certified by an independent Hall-violator check.  Fixed seed, so the
# pass is deterministic and CI-friendly.
check: build
	dune build @fuzz

fuzz: check

bench:
	dune exec bench/main.exe

clean:
	dune clean
