.PHONY: all build test check fuzz battery serve bench bench-quick bench-json bench-compare obs-gate fmt clean

all: build

build:
	dune build

test:
	dune runtest

# Short-budget differential fuzz pass (separate from `dune runtest`):
# 200 random bipartite instances x 17 max-matching solvers (incl. the
# warm-start incremental solver, cold and warm, the component-sharded
# solver at three shard/jobs settings, whose merged assignment must be
# bit-identical to Hopcroft-Karp's, and the layout-renumbered solver
# variants) plus 6 simulated scenarios x 9 lockstep engines (3
# schedulers + 2 incremental + 2 sharded + 2 layout),
# every engine failure round certified by an independent Hall-violator
# check.  Fixed seed, so the pass is deterministic and CI-friendly.
# The verdict carries a one-line obs summary of the solver counters
# (vod_obs).
check: build
	dune build @fuzz

fuzz: check

# The curated scenario battery: every (scenario x engine config) cell
# under examples/battery/ must stay inside its declared KPI budgets.
# The ranked vod-scorecard/1 JSONL lands in battery_scorecard.jsonl
# (byte-identical at any --jobs); the ranking table goes to stderr.
# Nonzero exit on any budget breach, so this is a CI gate.
battery: build
	dune exec bin/vodctl.exe -- battery examples/battery --jobs 2 --out battery_scorecard.jsonl

# Service-mode smoke: the storm scenario (flash crowds over a group
# outage) through `vodctl serve` — admission control, backpressure and
# deadline-aware recovery.  Nonzero exit on any stall among admitted
# sessions, a retry storm past the backoff budget, or an SLO breach;
# the vod-serve/1 verdict stream lands in serve_verdicts.jsonl,
# byte-identical at any --jobs.
serve: build
	dune exec bin/vodctl.exe -- serve --scn examples/service_storm.scn --jobs 2 --replications 3 --out serve_verdicts.jsonl

# Extra flags pass through: make bench BENCH_ARGS="--no-micro"
bench:
	dune exec bench/main.exe -- $(BENCH_ARGS)

# Skip the E1-E9 experiment tables; micro- and matching benches still run.
bench-quick:
	dune exec bench/main.exe -- --quick $(BENCH_ARGS)

# Machine-readable perf trajectory: scratch / warm-start incremental /
# bare CSR Hopcroft-Karp records (ns, matched and allocated bytes per
# round) at n in {256, 1024, 4096, 16384}, plus the component-sharded
# swarm points at n in {262144, 1000000} (delta-CSR rebuild + sharded
# solve per round) and the service-loop points (`vodctl serve` round
# cost and admission-decision latency at n=16384, bench_serve.ml),
# written to BENCH_matching.json at the repo root.
# The printed output also carries the catalog-scaling sweep (ns/round/n
# across six orders of magnitude — Theorem 1's linear admission cost).
bench-json:
	dune exec bench/main.exe -- --quick --no-micro --json BENCH_matching.json

# Diff the fresh records against the committed baseline; fails on a
# ns_per_round regression beyond COMPARE_THRESHOLD percent (default
# 25; CI passes a looser value for shared runners), on any
# matched_per_round drift, which no timing budget excuses, and on any
# baseline point missing from the fresh run (a vanished point would
# silently switch the gate off).  `--format json` emits the
# vod-bench-diff/1 verdict document CI uploads as an artifact.
COMPARE_THRESHOLD ?= 25
bench-compare: bench-json
	dune exec bench/compare.exe -- bench/BENCH_matching.baseline.json BENCH_matching.json --threshold $(COMPARE_THRESHOLD)

# Telemetry-overhead gate: one seeded n=16384 engine point run with
# the round sink off and then on (Timeseries rings + the default SLO
# pair), emitted as two single-record bench files and diffed with
# compare.exe.  The ns threshold bounds the telemetry overhead; the
# exact matched_per_round gate fails if telemetry perturbed the run at
# all (the round sink is observation-only by contract).
obs-gate: build
	dune exec bench/main.exe -- --obs-gate OBS
	dune exec bench/compare.exe -- OBS_off.json OBS_on.json --threshold $(COMPARE_THRESHOLD)

fmt:
	dune build @fmt

clean:
	dune clean
